package verify

// The dumb-but-obviously-correct reference path for the linear solve: a
// dense-matrix assembly of the documented network (written straight from
// the modeling spec in thermal/model.go's comments, sharing none of the
// production code's edge lists, CSR layout, preconditioner, or kernel) and
// a textbook Gauss-Seidel iteration over it. Slow and simple on purpose —
// its only job is to be independently, visibly right so the optimized
// CSR/CG kernel can be differenced against it.

import (
	"context"
	"math"
	"math/rand"

	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/geom"
	"chiplet25d/internal/org"
	"chiplet25d/internal/perf"
	"chiplet25d/internal/power"
	"chiplet25d/internal/thermal"
)

// denseSystem is the reference network: a full n×n matrix (off-diagonals
// and diagonal alike), the right-hand side for a given power map, and the
// bookkeeping needed to read the solution back.
type denseSystem struct {
	n        int
	a        [][]float64
	rhs      []float64
	ambient  float64
	nCells   int
	chipBase int
	sinkBase int
	convG    []float64
}

// addG accumulates one symmetric conductance into the dense matrix.
func (d *denseSystem) addG(i, j int, g float64) {
	d.a[i][j] -= g
	d.a[j][i] -= g
	d.a[i][i] += g
	d.a[j][j] += g
}

// assembleDense builds the reference system for a stack on an n×n grid,
// following the documented scheme: per-layer lateral half-cell series
// resistances, vertical inter-layer links, a 2x spreader and 4x sink with
// the center-quarter nesting maps, and per-sink-cell convection h·16·area.
// The optional board path is deliberately unsupported (the verification
// configs never enable it).
func assembleDense(stack floorplan.Stack, cfg thermal.Config) (*denseSystem, error) {
	nx, ny := cfg.Nx, cfg.Ny
	grid, err := geom.NewGrid(nx, ny, stack.W, stack.H)
	if err != nil {
		return nil, err
	}
	nc := nx * ny
	nLayer := len(stack.Layers)
	n := (nLayer + 2) * nc
	d := &denseSystem{
		n:        n,
		ambient:  cfg.AmbientC,
		nCells:   nc,
		chipBase: stack.ChipLayer * nc,
		sinkBase: (nLayer + 1) * nc,
		convG:    make([]float64, nc),
	}
	d.a = make([][]float64, n)
	for i := range d.a {
		d.a[i] = make([]float64, n)
	}
	cw := grid.CellW() * 1e-3
	ch := grid.CellH() * 1e-3
	area := cw * ch

	props := make([][]floorplan.LayerProps, nLayer)
	for l, layer := range stack.Layers {
		props[l] = floorplan.RasterizeLayer(layer, grid)
	}
	idx := func(ix, iy int) int { return iy*nx + ix }

	for l := 0; l < nLayer; l++ {
		t := stack.Layers[l].ThicknessM
		base := l * nc
		for iy := 0; iy < ny; iy++ {
			for ix := 0; ix < nx; ix++ {
				c := idx(ix, iy)
				if ix+1 < nx {
					c2 := idx(ix+1, iy)
					r := 0.5*cw/(props[l][c].LatK*t*ch) + 0.5*cw/(props[l][c2].LatK*t*ch)
					d.addG(base+c, base+c2, 1/r)
				}
				if iy+1 < ny {
					c2 := idx(ix, iy+1)
					r := 0.5*ch/(props[l][c].LatK*t*cw) + 0.5*ch/(props[l][c2].LatK*t*cw)
					d.addG(base+c, base+c2, 1/r)
				}
			}
		}
	}
	for l := 0; l+1 < nLayer; l++ {
		tLo := stack.Layers[l].ThicknessM
		tHi := stack.Layers[l+1].ThicknessM
		for c := 0; c < nc; c++ {
			r := 0.5*tLo/(props[l][c].VertK*area) + 0.5*tHi/(props[l+1][c].VertK*area)
			d.addG(l*nc+c, (l+1)*nc+c, 1/r)
		}
	}
	sprBase := nLayer * nc
	tTop := stack.Layers[nLayer-1].ThicknessM
	tSpr := floorplan.SpreaderThicknessM
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			c := idx(ix, iy)
			sc := idx((ix+nx/2)/2, (iy+ny/2)/2)
			r := 0.5*tTop/(props[nLayer-1][c].VertK*area) + 0.5*tSpr/(cfg.SpreaderK*area)
			d.addG((nLayer-1)*nc+c, sprBase+sc, 1/r)
		}
	}
	denseUniformLateral(d, sprBase, nx, ny, 2*cw, 2*ch, tSpr, cfg.SpreaderK)

	tSink := floorplan.SinkThicknessM
	sprArea := 4 * area
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			sc := idx(ix, iy)
			kc := idx((ix+nx/2)/2, (iy+ny/2)/2)
			r := 0.5*tSpr/(cfg.SpreaderK*sprArea) + 0.5*tSink/(cfg.SinkK*sprArea)
			d.addG(sprBase+sc, d.sinkBase+kc, 1/r)
		}
	}
	denseUniformLateral(d, d.sinkBase, nx, ny, 4*cw, 4*ch, tSink, cfg.SinkK)

	sinkCellArea := 16 * area
	for c := 0; c < nc; c++ {
		g := cfg.HeatTransferCoeff * sinkCellArea
		d.convG[c] = g
		d.a[d.sinkBase+c][d.sinkBase+c] += g
	}
	return d, nil
}

func denseUniformLateral(d *denseSystem, base, nx, ny int, cw, ch, t, k float64) {
	gx := k * t * ch / cw
	gy := k * t * cw / ch
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			c := iy*nx + ix
			if ix+1 < nx {
				d.addG(base+c, base+c+1, gx)
			}
			if iy+1 < ny {
				d.addG(base+c, base+c+nx, gy)
			}
		}
	}
}

// solveGS runs plain Gauss-Seidel sweeps on the dense system until the
// relative residual drops below tol, starting from ambient. The dense rows
// are pre-scanned once into (column, value) pairs — a mechanical skip of
// exact zeros that changes no arithmetic — because an O(n²) sweep would
// make even the 8-grid differential take minutes. Returns the field, the
// sweep count, and the final relative residual.
func (d *denseSystem) solveGS(pmap []float64, tol float64, maxSweeps int) ([]float64, int, float64) {
	n := d.n
	rhs := make([]float64, n)
	for c, p := range pmap {
		rhs[d.chipBase+c] = p
	}
	for c := 0; c < d.nCells; c++ {
		rhs[d.sinkBase+c] += d.convG[c] * d.ambient
	}
	rows := make([][]denseEnt, n)
	for i := 0; i < n; i++ {
		for j, v := range d.a[i] {
			if j != i && v != 0 {
				rows[i] = append(rows[i], denseEnt{j, v})
			}
		}
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = d.ambient
	}
	bnorm := 0.0
	for _, b := range rhs {
		bnorm += b * b
	}
	bnorm = math.Sqrt(bnorm)
	res := math.Inf(1)
	sweeps := 0
	for ; sweeps < maxSweeps; sweeps++ {
		if sweeps%16 == 0 {
			res = d.residual(rows, x, rhs) / bnorm
			if res < tol {
				break
			}
		}
		for i := 0; i < n; i++ {
			s := rhs[i]
			for _, e := range rows[i] {
				s -= e.v * x[e.j]
			}
			x[i] = s / d.a[i][i]
		}
	}
	res = d.residual(rows, x, rhs) / bnorm
	return x, sweeps, res
}

// denseEnt is one pre-scanned nonzero of a dense row.
type denseEnt struct {
	j int
	v float64
}

func (d *denseSystem) residual(rows [][]denseEnt, x, rhs []float64) float64 {
	sum := 0.0
	for i := 0; i < d.n; i++ {
		r := rhs[i] - d.a[i][i]*x[i]
		for _, e := range rows[i] {
			r -= e.v * x[e.j]
		}
		sum += r * r
	}
	return math.Sqrt(sum)
}

// gsMaxSweeps bounds the Gauss-Seidel iteration. The weak convection
// anchor makes GS converge slowly (its slowest mode is the global warm-up
// toward the boundary), so the cap is generous; the check fails loudly if
// the cap is hit before the residual target.
const gsMaxSweeps = 400000

// checkGaussSeidel differences the production CSR/CG kernel against the
// dense Gauss-Seidel reference on randomized floorplans: same documented
// physics, disjoint implementations, fields compared node by node. The
// fast tier runs the 8-grid; -long adds the 16-grid.
func checkGaussSeidel(ctx *Context) error {
	rng := rand.New(rand.NewSource(caseSeed + 4))
	grids := []int{8}
	if ctx != nil && ctx.Long {
		grids = append(grids, 16)
	}
	worst := 0.0
	for _, n := range grids {
		pl := randPlacement(rng)
		stack, err := floorplan.BuildStack(pl)
		if err != nil {
			return err
		}
		cfg := thermal.DefaultConfig()
		cfg.Nx, cfg.Ny = n, n
		cfg.Tolerance = VerifyCGTol
		cfg.MaxIterations = 200000
		m, err := thermal.NewModel(stack, cfg)
		if err != nil {
			return err
		}
		pmap, _ := randPowerMap(rng, m, pl)
		res, err := m.Solve(pmap)
		if err != nil {
			return err
		}
		dsys, err := assembleDense(stack, cfg)
		if err != nil {
			return err
		}
		ref, sweeps, gsRes := dsys.solveGS(pmap, VerifyCGTol, gsMaxSweeps)
		if gsRes >= VerifyCGTol {
			return failf("gauss-seidel: grid %d: reference did not converge (%d sweeps, residual %.2e)", n, sweeps, gsRes)
		}
		for i := range ref {
			if d := math.Abs(res.T[i] - ref[i]); d > worst {
				worst = d
			}
		}
		if worst > GaussSeidelTolC {
			return failf("gauss-seidel: grid %d: worst node gap %.2e °C exceeds %g (GS: %d sweeps, residual %.2e)",
				n, worst, GaussSeidelTolC, sweeps, gsRes)
		}
		ctx.logf("gauss-seidel: grid %d: worst node gap %.2e °C after %d GS sweeps (tol %g)", n, worst, sweeps, GaussSeidelTolC)
	}
	return nil
}

// checkReferenceEvaluator differences the Engine (memoized, deduplicated,
// surrogate-capable) against org.ReferenceSimulate (none of that) on a few
// evaluation keys, bit for bit — and replays each key on a second engine in
// reverse order to pin the memo's order independence.
func checkReferenceEvaluator(ctx *Context) error {
	b, err := perf.ByName("cholesky")
	if err != nil {
		return err
	}
	cfg := org.DefaultConfig(b)
	cfg.Thermal.Nx, cfg.Thermal.Ny = invariantGridN, invariantGridN
	pl4, err := floorplan.PaperOrg(4, 0, 0, 2)
	if err != nil {
		return err
	}
	pl16, err := floorplan.PaperOrg(16, 0.5, 1, 1)
	if err != nil {
		return err
	}
	type key struct {
		name string
		pl   floorplan.Placement
		fIdx int
		p    int
	}
	keys := []key{
		{"2d-f0-p256", floorplan.SingleChip(), 0, 256},
		{"4c-f2-p128", pl4, 2, 128},
	}
	if ctx != nil && ctx.Long {
		keys = append(keys, key{"16c-f4-p256", pl16, 4, 256})
	}
	engA, err := org.NewEngine(cfg)
	if err != nil {
		return err
	}
	engB, err := org.NewEngine(cfg)
	if err != nil {
		return err
	}
	recs := make([]org.SimRecord, len(keys))
	for i, k := range keys {
		want, err := org.ReferenceSimulate(cfg, b, k.pl, power.FrequencySet[k.fIdx], k.p)
		if err != nil {
			return failf("reference evaluator: %s: reference: %v", k.name, err)
		}
		got, _, err := engA.Simulate(context.Background(), b, k.pl, power.FrequencySet[k.fIdx], k.p)
		if err != nil {
			return failf("reference evaluator: %s: engine: %v", k.name, err)
		}
		if got != want {
			return failf("reference evaluator: %s: engine %+v != reference %+v", k.name, got, want)
		}
		recs[i] = want
	}
	// Reverse order on a fresh engine: the memo must be order-independent.
	for i := len(keys) - 1; i >= 0; i-- {
		k := keys[i]
		got, _, err := engB.Simulate(context.Background(), b, k.pl, power.FrequencySet[k.fIdx], k.p)
		if err != nil {
			return failf("reference evaluator: %s (reversed): %v", k.name, err)
		}
		if got != recs[i] {
			return failf("reference evaluator: %s: reversed-order engine %+v != %+v", k.name, got, recs[i])
		}
	}
	ctx.logf("reference evaluator: %d keys bit-identical across reference, engine, and reversed-order engine", len(keys))
	return nil
}
