package serve

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"chiplet25d/internal/org"
)

// Search convergence debugging: every org-search request that actually
// computes (cache misses) leaves its audit trail in a bounded ring, served
// at GET /debug/search. Cached responses carry the trail of the request
// that computed them, so the ring records computations, not lookups.

// auditRecord is one completed search's convergence audit.
type auditRecord struct {
	RequestID string          `json:"request_id"`
	CacheKey  string          `json:"cache_key"`
	Start     time.Time       `json:"start"`
	ElapsedMS float64         `json:"elapsed_ms"`
	Feasible  bool            `json:"feasible"`
	Trail     *org.AuditTrail `json:"trail"`
}

// auditRing retains the most recent search audits, drop-oldest.
type auditRing struct {
	mu   sync.Mutex
	recs []auditRecord
	head int
	size int
}

func newAuditRing(capacity int) *auditRing {
	return &auditRing{recs: make([]auditRecord, capacity)}
}

// add records one search audit; nil receiver is a no-op.
func (r *auditRing) add(rec auditRecord) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.size < len(r.recs) {
		r.recs[(r.head+r.size)%len(r.recs)] = rec
		r.size++
		return
	}
	r.recs[r.head] = rec
	r.head = (r.head + 1) % len(r.recs)
}

// snapshot returns the retained audits, newest first.
func (r *auditRing) snapshot() []auditRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]auditRecord, r.size)
	for i := 0; i < r.size; i++ {
		out[r.size-1-i] = r.recs[(r.head+i)%len(r.recs)]
	}
	return out
}

// handleDebugSearch serves the retained search audit trails.
func (s *Server) handleDebugSearch(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	recs := s.audits.snapshot()
	if recs == nil {
		recs = []auditRecord{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(struct {
		Searches []auditRecord `json:"searches"`
	}{recs})
}
