package serve

import (
	"encoding/json"
	"net/http"
	"runtime/debug"
	"time"

	"chiplet25d/internal/obs"
)

// statusWriter captures the status code a handler wrote so the middleware
// can log and label it after the fact.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the underlying ResponseWriter so SSE streaming works
// through the middleware (the embedded interface alone does not make
// statusWriter an http.Flusher).
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a compute handler with the per-request observability
// plumbing: request ID (generated, or honored from an inbound X-Request-Id)
// echoed in the response header, W3C trace context (an inbound traceparent
// is adopted and the request's own traceparent echoed back), a
// request-scoped slog logger, a trace that lands in the flight recorder,
// feeds the per-stage duration histograms (with trace/fidelity exemplars),
// and enqueues for OTLP export, and the in-flight gauge for the route.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if id == "" || len(id) > 64 {
			id = obs.NewRequestID()
		}
		w.Header().Set("X-Request-Id", id)
		lg := s.logger.With("request_id", id, "route", route)
		tr := obs.NewTrace(id, route)
		if tid, parent, sampled, ok := obs.ParseTraceparent(r.Header.Get("traceparent")); ok {
			tr.SetRemoteParent(tid, parent, sampled)
		}
		w.Header().Set("Traceparent", tr.Traceparent())
		ctx := obs.WithTrace(obs.WithLogger(obs.WithRequestID(r.Context(), id), lg), tr)

		g := s.inflight.With(route)
		g.Inc()
		defer g.Dec()

		sw := &statusWriter{ResponseWriter: w}
		h(sw, r.WithContext(ctx))

		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		// The status attribute must land before Snapshot: the tail sampler
		// and the OTLP span status both read it from the snapshot.
		tr.SetAttr("status", status)
		d := tr.Finish()
		snap := tr.Snapshot()
		snap.Walk(func(sp *obs.SpanJSON) {
			secs := sp.DurationMS / 1e3
			if fid, ok := sp.Attrs["fidelity"].(string); ok {
				s.stageSeconds.With(sp.Name).ObserveWithExemplar(secs,
					"trace_id", snap.TraceID, "fidelity", fid)
			} else {
				s.stageSeconds.With(sp.Name).ObserveWithExemplar(secs,
					"trace_id", snap.TraceID)
			}
		})
		s.recorder.Record(snap)
		s.exporter.Enqueue(snap)

		args := []any{"status", status, "duration_ms", float64(d.Microseconds()) / 1e3}
		if c, ok := snap.Attrs["cache"]; ok {
			args = append(args, "cache", c)
		}
		lg.Info("request", args...)
	}
}

// debugSolvesResponse is the GET /debug/solves payload.
type debugSolvesResponse struct {
	SlowThresholdMS float64          `json:"slow_threshold_ms"`
	Recent          []*obs.TraceJSON `json:"recent"`
	Slow            []*obs.TraceJSON `json:"slow"`
}

// handleDebugSolves dumps the flight recorder: the most recent completed
// request traces plus the retained slow ones, newest first.
func (s *Server) handleDebugSolves(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(debugSolvesResponse{
		SlowThresholdMS: float64(s.recorder.SlowThreshold()) / float64(time.Millisecond),
		Recent:          s.recorder.Recent(),
		Slow:            s.recorder.Slow(),
	})
}

// buildInfo is the daemon's build identity, read once at startup.
type buildInfo struct {
	Version   string
	Revision  string
	GoVersion string
}

// readBuildInfo extracts version metadata embedded by the Go toolchain
// (module version, VCS revision when built from a checkout).
func readBuildInfo() buildInfo {
	out := buildInfo{Version: "unknown", Revision: "unknown", GoVersion: "unknown"}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return out
	}
	out.GoVersion = bi.GoVersion
	if bi.Main.Version != "" {
		out.Version = bi.Main.Version
	}
	modified := false
	for _, kv := range bi.Settings {
		switch kv.Key {
		case "vcs.revision":
			out.Revision = kv.Value
		case "vcs.modified":
			modified = kv.Value == "true"
		}
	}
	if modified {
		out.Revision += "-dirty"
	}
	return out
}

// healthzResponse is the GET /healthz payload.
type healthzResponse struct {
	Status        string  `json:"status"`
	Version       string  `json:"version"`
	Revision      string  `json:"revision"`
	GoVersion     string  `json:"go_version"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(healthzResponse{
		Status:        "ok",
		Version:       s.build.Version,
		Revision:      s.build.Revision,
		GoVersion:     s.build.GoVersion,
		UptimeSeconds: time.Since(s.started).Seconds(),
	})
}
