package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"chiplet25d/internal/org"
)

func TestRendezvousOwnerDeterministicAndAgreed(t *testing.T) {
	nodes := []string{"http://a:8080", "http://b:8080", "http://c:8080"}
	rings := []*shardRing{
		newShardRing(nodes[0], nodes[1:]),
		newShardRing(nodes[1], []string{nodes[0], nodes[2]}),
		newShardRing(nodes[2], nodes[:2]),
	}
	for i := 0; i < 64; i++ {
		fp := fmt.Sprintf("%064x", i)
		owner := rings[0].owner(fp)
		for _, r := range rings[1:] {
			if got := r.owner(fp); got != owner {
				t.Fatalf("fingerprint %d: ring disagreement: %s vs %s", i, got, owner)
			}
		}
		if owner != rings[0].owner(fp) {
			t.Fatalf("fingerprint %d: owner not deterministic", i)
		}
	}
}

func TestRendezvousDistribution(t *testing.T) {
	ring := newShardRing("http://a", []string{"http://b", "http://c", "http://d"})
	counts := map[string]int{}
	for i := 0; i < 4096; i++ {
		counts[ring.owner(fmt.Sprintf("%064x", i*2654435761))]++
	}
	for _, n := range ring.nodes {
		// Perfectly uniform would be 1024 each; accept a generous band — the
		// property under test is "no node starves", not statistical purity.
		if counts[n] < 512 || counts[n] > 2048 {
			t.Errorf("node %s owns %d of 4096 fingerprints, want roughly balanced", n, counts[n])
		}
	}
}

func TestShardRingNormalization(t *testing.T) {
	r := newShardRing("http://a:8080/", []string{" http://b:8080 ", "http://a:8080", "", "http://b:8080/"})
	if len(r.nodes) != 2 {
		t.Fatalf("nodes = %v, want deduplicated pair", r.nodes)
	}
	if r.self != "http://a:8080" {
		t.Fatalf("self = %q, want trimmed", r.self)
	}
}

func TestMemoEndpointMisses(t *testing.T) {
	s := testServer(t, nil)
	req := httptest.NewRequest(http.MethodGet, "/v1/memo/deadbeef/cafebabe", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown fingerprint: status = %d, want 404", rec.Code)
	}

	// Materialize an engine, then ask for a key it does not hold.
	if rec := postJSON(t, s.Handler(), "/v1/thermal/solve", solveBody); rec.Code != http.StatusOK {
		t.Fatalf("solve: %d %s", rec.Code, rec.Body)
	}
	var sv debugShardResponse
	shardRec := httptest.NewRecorder()
	s.Handler().ServeHTTP(shardRec, httptest.NewRequest(http.MethodGet, "/debug/shard?keys=1", nil))
	if err := json.Unmarshal(shardRec.Body.Bytes(), &sv); err != nil {
		t.Fatal(err)
	}
	if len(sv.Engines) != 1 || sv.Engines[0].MemoEntries < 1 || len(sv.Engines[0].MemoKeys) < 1 {
		t.Fatalf("debug/shard = %+v, want one engine with a resident memo key", sv)
	}
	fp := sv.Engines[0].FingerprintHash
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/memo/"+fp+"/cafebabe", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown key: status = %d, want 404", rec.Code)
	}

	// And the key it does hold round-trips as a SimRecord.
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/memo/"+fp+"/"+sv.Engines[0].MemoKeys[0], nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("resident key: status = %d, body = %s", rec.Code, rec.Body)
	}
	var sim org.SimRecord
	if err := json.Unmarshal(rec.Body.Bytes(), &sim); err != nil {
		t.Fatal(err)
	}
	if sim.PeakC <= 0 || sim.CGIterations <= 0 {
		t.Fatalf("memo record = %+v, want a completed simulation", sim)
	}
}

// twoNodes builds a mutual-peer pair behind swappable handlers (each node
// needs the other's URL before construction).
func twoNodes(t *testing.T, mutate func(*Options)) (a, b *Server, urlA, urlB string) {
	t.Helper()
	var hA, hB atomic.Value
	tsA := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hA.Load().(http.Handler).ServeHTTP(w, r)
	}))
	t.Cleanup(tsA.Close)
	tsB := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hB.Load().(http.Handler).ServeHTTP(w, r)
	}))
	t.Cleanup(tsB.Close)
	mk := func(self string, peers []string) *Server {
		return testServer(t, func(o *Options) {
			o.SelfURL, o.Peers = self, peers
			if mutate != nil {
				mutate(o)
			}
		})
	}
	a = mk(tsA.URL, []string{tsB.URL})
	b = mk(tsB.URL, []string{tsA.URL})
	hA.Store(a.Handler())
	hB.Store(b.Handler())
	return a, b, tsA.URL, tsB.URL
}

func solveVia(t *testing.T, url string) SolveResponse {
	t.Helper()
	resp, err := http.Post(url+"/v1/thermal/solve", "application/json", strings.NewReader(solveBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve via %s: %d", url, resp.StatusCode)
	}
	return out
}

func TestTwoNodePeerFetch(t *testing.T) {
	a, b, urlA, urlB := twoNodes(t, nil)

	// Warm node A, learn who owns the solve's fingerprint, then direct the
	// warm-up at the owner so the non-owner's first compute must peer-fetch.
	first := solveVia(t, urlA)
	fp := a.engines.Resident()[0].FingerprintHash()
	owner := a.ring.owner(fp)
	ownerSrv, otherSrv, otherURL := a, b, urlB
	if owner == urlB {
		// The probe warmed the non-owner; warm the owner too (the probe's
		// record peer-fetches across, which is itself part of the test).
		ownerSrv, otherSrv, otherURL = b, a, urlA
		solveVia(t, urlB)
		otherSrv, otherURL = a, urlA
		_ = ownerSrv
	}
	// The non-owner has no local memo entry for a *different* operating
	// point; computing it after the owner has it resident must hit the peer.
	vary := strings.Replace(solveBody, `"cores": 128`, `"cores": 256`, 1)
	respOwner, err := http.Post(owner+"/v1/thermal/solve", "application/json", strings.NewReader(vary))
	if err != nil {
		t.Fatal(err)
	}
	var ownerOut SolveResponse
	if err := json.NewDecoder(respOwner.Body).Decode(&ownerOut); err != nil {
		t.Fatal(err)
	}
	respOwner.Body.Close()

	resp, err := http.Post(otherURL+"/v1/thermal/solve", "application/json", strings.NewReader(vary))
	if err != nil {
		t.Fatal(err)
	}
	var otherOut SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&otherOut); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	if otherOut.PeakC != ownerOut.PeakC || otherOut.CGIterations != ownerOut.CGIterations ||
		otherOut.TotalPowerW != ownerOut.TotalPowerW {
		t.Fatalf("peer-fetched result diverged: %+v vs %+v", otherOut, ownerOut)
	}
	if hits := otherSrv.engines.Stats().PeerHits; hits < 1 {
		t.Fatalf("non-owner peer hits = %d, want >= 1", hits)
	}
	_ = first
}

func TestDeadPeerFallsBackToLocal(t *testing.T) {
	// A node whose only peer is unreachable must still answer, from local
	// compute, within (roughly) the peer timeout plus the solve itself.
	s := testServer(t, func(o *Options) {
		o.SelfURL = "http://shard-test-self.invalid"
		o.Peers = []string{"http://127.0.0.1:9"} // discard port: refused
		o.PeerTimeout = 100 * time.Millisecond
	})
	rec := postJSON(t, s.Handler(), "/v1/thermal/solve", solveBody)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body = %s", rec.Code, rec.Body)
	}
	var out SolveResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.PeakC <= 0 {
		t.Fatalf("peak_c = %g, want a computed result despite the dead peer", out.PeakC)
	}
}

func TestDebugShardDisabled(t *testing.T) {
	s := testServer(t, nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/shard", nil))
	var sv debugShardResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sv); err != nil {
		t.Fatal(err)
	}
	if sv.Enabled || sv.Self != "" || len(sv.Nodes) != 0 {
		t.Fatalf("standalone /debug/shard = %+v, want disabled", sv)
	}
}

func TestPeersWithoutSelfDisablesSharding(t *testing.T) {
	s := testServer(t, func(o *Options) { o.Peers = []string{"http://b:8080"} })
	if s.ring != nil || s.peerFetch != nil {
		t.Fatal("peers without self must leave sharding disabled")
	}
}
