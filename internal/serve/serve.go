// Package serve implements chipletd, the long-lived HTTP/JSON serving
// subsystem over the paper's models. Where the one-shot CLIs rebuild
// thermal models and re-run solves per invocation, chipletd amortizes that
// cost fleet-wide behind three reusable components:
//
//   - a content-addressed LRU result cache (internal/serve/cache) keyed by
//     a canonical hash of the request — placement geometry snapped to the
//     0.5 mm grid, DVFS point, active-core count, grid resolution — with
//     singleflight deduplication so concurrent identical requests share one
//     solve;
//   - a bounded worker pool (internal/serve/pool) with an admission queue,
//     per-request deadlines, cancellation that propagates into CG solver
//     iterations and the greedy search loop, and graceful drain on SIGTERM;
//   - an observability layer (internal/obs + internal/serve/metrics):
//     request-scoped span traces on every compute request (returned inline
//     with ?trace=1, retained in a flight recorder at GET /debug/solves),
//     request IDs echoed in X-Request-Id, structured request logs, and
//     Prometheus text exposition at GET /metrics.
//
// For horizontal scale-out, chipletd adds a batched sweep API with
// cross-request coalescing (POST /v1/batch expands sweep templates
// server-side and deduplicates near-identical candidates on their canonical
// cache keys before they reach the pool), SSE streaming of per-item and
// search progress (?stream=1), and a sharding layer: a static -peers list,
// rendezvous hashing on the engine physics fingerprint, and a memo
// peer-fetch endpoint so a non-owner pulls memoized simulation results from
// the owning node instead of re-simulating (see internal/serve/shard.go).
//
// Endpoints:
//
//	POST /v1/thermal/solve  floorplan + workload -> peak temperature/power
//	POST /v1/org/search     benchmark, threshold, α/β -> best organization
//	POST /v1/cost           Eqs. (1)-(4) manufacturing cost queries
//	POST /v1/cost/tco       server/datacenter TCO elaboration ($/GIPS-year)
//	POST /v1/batch          batched solve/search/cost/tco items + sweep templates
//	GET  /v1/memo/{fp}/{k}  memo peer-fetch (sharding; content-addressed)
//	GET  /metrics           Prometheus text exposition
//	GET  /healthz           liveness + build info + uptime
//	GET  /debug/solves      flight recorder (recent + slow request traces)
//	GET  /debug/search      search convergence audit trails (recent searches)
//	GET  /debug/shard       this node's ring view + per-engine ownership
//	GET  /debug/pprof/*     runtime profiles (only with Options.EnablePprof)
package serve

import (
	"context"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strings"
	"time"

	"chiplet25d/internal/obs"
	"chiplet25d/internal/obs/export"
	"chiplet25d/internal/org"
	"chiplet25d/internal/serve/cache"
	"chiplet25d/internal/serve/metrics"
	"chiplet25d/internal/serve/pool"
)

// Options configures a Server.
type Options struct {
	// Addr is the listen address for Run.
	Addr string
	// Workers bounds concurrent solves.
	Workers int
	// KernelThreads is the thermal solver's parallel-kernel worker count
	// per solve. 0 picks max(1, GOMAXPROCS/Workers), so request-level and
	// kernel-level parallelism compose without oversubscription: a fully
	// loaded pool runs serial kernels, a lightly-provisioned pool lets each
	// solve fan out. Thread count never changes results (the kernel is
	// bit-deterministic), so cached and fresh responses always agree.
	KernelThreads int
	// SearchWorkers is the per-search greedy-restart worker count applied to
	// org-search requests that do not set their own search_workers. 0 picks
	// max(1, GOMAXPROCS/Workers) — the same budget rule as KernelThreads one
	// level up: the worker budget composes as serve pool → search workers →
	// kernel threads, and by default only the outermost loaded level fans
	// out. Worker count never changes search results (org's determinism
	// contract), so cached and fresh responses always agree.
	SearchWorkers int
	// Preconditioner selects the thermal CG preconditioner for solves and
	// for org-search requests that do not set their own ("ic0" or "mg";
	// empty keeps thermal's default, IC(0)). Like KernelThreads it is
	// excluded from cache identity: both preconditioners converge to the
	// same tolerance (~1e-6 °C node-for-node, pinned by verify's
	// differential/mg-ic0 check), so the knob changes wall-clock, not
	// answers.
	Preconditioner string
	// WarmStart enables cross-evaluation CG warm starts in the process-wide
	// evaluation engines (and for org-search requests that do not set their
	// own warm_start). Also excluded from cache identity: a seed changes
	// how fast CG converges, never what it converges to beyond the solver
	// tolerance.
	WarmStart bool
	// SpatialSurrogate enables the spatial compact-model fidelity tier by
	// default for org-search requests that do not set their own
	// spatial_surrogate. Escalation is conservative (org's threshold-side
	// contract, winner parity pinned by the verify drift tier), so the tier
	// changes how much work finds a winner, not which winner is found.
	SpatialSurrogate bool
	// TCONode is the default tech node applied to /v1/cost/tco requests
	// that do not set their own tech_node (empty keeps the base 45nm).
	// Unlike the wall-clock knobs, the node changes elaborations, so the
	// resolved node — not the raw request — enters each request's cache
	// key: two daemons with different defaults never share a stale entry.
	TCONode string
	// QueueDepth bounds the admission queue; beyond it requests get 503.
	QueueDepth int
	// CacheCapacity bounds the result cache in entries.
	CacheCapacity int
	// RequestTimeout is the per-request deadline (504 when exceeded).
	RequestTimeout time.Duration
	// DrainTimeout bounds the graceful SIGTERM drain.
	DrainTimeout time.Duration
	// MaxGridN caps the requested thermal grid so one request cannot ask
	// for an arbitrarily large model.
	MaxGridN int
	// Logger receives the daemon's structured logs; nil means slog.Default.
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the serving
	// mux. Off by default: profiles expose internals and cost CPU.
	EnablePprof bool
	// TraceRingSize is the flight-recorder capacity (recent and slow rings
	// each keep this many traces).
	TraceRingSize int
	// SlowTraceThreshold is the duration at or above which a request trace
	// is also retained in the slow ring. The OTLP tail sampler reuses it:
	// traces at least this slow always export.
	SlowTraceThreshold time.Duration
	// OTLPEndpoint is the base URL of an OTLP/HTTP collector (e.g.
	// http://otel:4318); traces POST to /v1/traces and metric snapshots to
	// /v1/metrics under it. Empty disables export entirely — the disabled
	// path is a nil-receiver no-op, costing no allocation on the solve path.
	OTLPEndpoint string
	// TraceSampleRate is the tail sampler's probability for unremarkable
	// traces (slow and 5xx traces always export). 0 defaults to 1.0; use a
	// negative value to export only slow/error traces.
	TraceSampleRate float64
	// AuditRingSize bounds the per-request search convergence audit trail
	// (events retained per search) and the /debug/search history ring.
	// 0 picks the default (256); negative disables auditing.
	AuditRingSize int
	// Peers lists the base URLs of the other chipletd nodes in a sharded
	// deployment (e.g. http://host2:8080). Empty disables sharding. All
	// nodes must be configured with the same total node set (each naming
	// the others in Peers and itself in SelfURL) for rendezvous ownership
	// to agree.
	Peers []string
	// SelfURL is this node's own base URL as the peers address it. Required
	// when Peers is set (ownership is computed over Peers + SelfURL); if
	// empty while Peers is non-empty, sharding is disabled with a warning.
	SelfURL string
	// PeerTimeout bounds one memo peer-fetch round trip. A fetch that
	// misses the deadline falls back to the local simulation, so a slow or
	// dead peer costs at most this much extra latency per miss. 0 picks
	// the default (500ms).
	PeerTimeout time.Duration
}

// DefaultOptions returns the production defaults.
func DefaultOptions() Options {
	return Options{
		Addr:           ":8080",
		Workers:        runtime.GOMAXPROCS(0),
		QueueDepth:     64,
		CacheCapacity:  512,
		RequestTimeout: 60 * time.Second,
		DrainTimeout:   30 * time.Second,
		MaxGridN:       128,

		TraceRingSize:      64,
		SlowTraceThreshold: 2 * time.Second,
		TraceSampleRate:    1.0,
		AuditRingSize:      256,
		PeerTimeout:        500 * time.Millisecond,
	}
}

// withDefaults fills zero fields from DefaultOptions.
func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.Addr == "" {
		o.Addr = d.Addr
	}
	if o.Workers <= 0 {
		o.Workers = d.Workers
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = d.QueueDepth
	}
	if o.CacheCapacity <= 0 {
		o.CacheCapacity = d.CacheCapacity
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = d.RequestTimeout
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = d.DrainTimeout
	}
	if o.MaxGridN <= 0 {
		o.MaxGridN = d.MaxGridN
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
	if o.TraceRingSize <= 0 {
		o.TraceRingSize = d.TraceRingSize
	}
	if o.SlowTraceThreshold <= 0 {
		o.SlowTraceThreshold = d.SlowTraceThreshold
	}
	if o.TraceSampleRate == 0 {
		o.TraceSampleRate = d.TraceSampleRate
	}
	if o.AuditRingSize == 0 {
		o.AuditRingSize = d.AuditRingSize
	}
	if o.KernelThreads <= 0 {
		o.KernelThreads = runtime.GOMAXPROCS(0) / o.Workers
		if o.KernelThreads < 1 {
			o.KernelThreads = 1
		}
	}
	if o.SearchWorkers <= 0 {
		o.SearchWorkers = runtime.GOMAXPROCS(0) / o.Workers
		if o.SearchWorkers < 1 {
			o.SearchWorkers = 1
		}
	}
	if ncpu := runtime.NumCPU(); o.SearchWorkers > ncpu {
		// More restart workers than CPUs is pure scheduling overhead: the
		// restarts are CPU-bound, so oversubscription only adds contention
		// (benchmarked below 1x serial on a 1-CPU box). Cap and say so —
		// worker count never changes results, only wall clock.
		o.Logger.Warn("capping search workers at the CPU count",
			"requested", o.SearchWorkers, "num_cpu", ncpu)
		o.SearchWorkers = ncpu
	}
	if o.PeerTimeout <= 0 {
		o.PeerTimeout = d.PeerTimeout
	}
	return o
}

// Server is the chipletd HTTP serving subsystem.
type Server struct {
	opts     Options
	cache    *cache.Cache
	pool     *pool.Pool
	engines  *org.EngineCache
	reg      *metrics.Registry
	mux      *http.ServeMux
	logger   *slog.Logger
	recorder *obs.Recorder
	build    buildInfo
	started  time.Time
	exporter *export.Exporter // nil when OTLPEndpoint is unset (no-op)
	audits   *auditRing       // /debug/search history; nil when auditing disabled

	// Sharding state: nil ring means standalone (every fingerprint local).
	ring      *shardRing
	peerHTTP  *http.Client
	peerFetch org.PeerFetchFunc // installed on engines via Server.engine

	requests     *metrics.CounterVec // endpoint, code
	cacheHits    *metrics.CounterVec // endpoint
	cacheMisses  *metrics.CounterVec // endpoint
	solveLatency *metrics.Histogram
	cgIterations *metrics.Counter
	thermalSims  *metrics.Counter
	cgIterHist   *metrics.HistogramVec // CG iterations per solve, by preconditioner
	leakIterHist *metrics.Histogram    // leakage-loop iterations per solve
	stageSeconds *metrics.HistogramVec // stage
	inflight     *metrics.GaugeVec     // route

	peerFetches      *metrics.CounterVec // result: hit, miss, error
	peerFetchSeconds *metrics.Histogram  // successful fetch round trips
	memoServed       *metrics.CounterVec // result: hit, miss (GET /v1/memo)
	batchItems       *metrics.Counter
	batchCoalesced   *metrics.Counter
	tcoEvals         *metrics.CounterVec // fidelity: analytic, spatial
}

// New assembles a server (not yet listening; use Run, or Handler with your
// own http.Server).
func New(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:     opts,
		cache:    cache.New(opts.CacheCapacity),
		pool:     pool.New(opts.Workers, opts.QueueDepth),
		engines:  org.NewEngineCache(8),
		reg:      metrics.NewRegistry(),
		mux:      http.NewServeMux(),
		logger:   opts.Logger,
		recorder: obs.NewRecorder(opts.TraceRingSize, opts.SlowTraceThreshold),
		build:    readBuildInfo(),
		started:  time.Now(),
	}
	if opts.AuditRingSize > 0 {
		s.audits = newAuditRing(opts.AuditRingSize)
	}
	if len(opts.Peers) > 0 {
		if opts.SelfURL == "" {
			s.logger.Warn("peers configured without a self URL; sharding disabled")
		} else {
			s.ring = newShardRing(opts.SelfURL, opts.Peers)
			s.peerHTTP = &http.Client{Timeout: opts.PeerTimeout}
			s.logger.Info("sharding enabled",
				"self", s.ring.self, "nodes", len(s.ring.nodes),
				"peer_timeout", opts.PeerTimeout.String())
		}
	}
	s.peerFetch = s.peerFetcher()
	s.exporter = export.New(export.Options{
		Endpoint:    opts.OTLPEndpoint,
		ServiceName: "chipletd",
		Sampler: export.NewTailSampler(opts.TraceSampleRate,
			opts.SlowTraceThreshold, time.Now().UnixNano()),
		MetricsSource: metricsSource(s.reg),
		Logger:        opts.Logger,
	})
	s.requests = s.reg.CounterVec("chipletd_requests_total",
		"HTTP requests by endpoint and status code.", "endpoint", "code")
	s.cacheHits = s.reg.CounterVec("chipletd_cache_hits_total",
		"Requests answered from the content-addressed result cache.", "endpoint")
	s.cacheMisses = s.reg.CounterVec("chipletd_cache_misses_total",
		"Requests that ran a fresh computation.", "endpoint")
	s.solveLatency = s.reg.Histogram("chipletd_solve_latency_seconds",
		"End-to-end latency of compute endpoints (cache hits included).",
		[]float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60})
	s.cgIterations = s.reg.Counter("chipletd_cg_iterations_total",
		"Conjugate-gradient iterations spent in thermal solves.")
	s.thermalSims = s.reg.Counter("chipletd_thermal_sims_total",
		"Full leakage-coupled thermal simulations run.")
	s.cgIterHist = s.reg.HistogramVec("chipletd_cg_iterations",
		"Conjugate-gradient iterations per fresh solve, by preconditioner.",
		[]float64{8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096},
		"precond")
	s.leakIterHist = s.reg.Histogram("chipletd_leakage_iterations",
		"Leakage-loop iterations per fresh solve.",
		[]float64{1, 2, 3, 4, 6, 8, 12})
	s.stageSeconds = s.reg.HistogramVec("chipletd_stage_duration_seconds",
		"Per-stage durations from request span traces.",
		[]float64{0.0001, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60},
		"stage")
	s.inflight = s.reg.GaugeVec("chipletd_inflight_requests",
		"In-flight requests by route.", "route")
	s.reg.GaugeVec("chipletd_build_info",
		"Build metadata; value is always 1.", "version", "revision", "goversion").
		With(s.build.Version, s.build.Revision, s.build.GoVersion).Set(1)
	s.reg.GaugeFunc("chipletd_queue_depth",
		"Tasks waiting in the worker-pool admission queue.",
		func() float64 { return float64(s.pool.QueueDepth()) })
	s.reg.GaugeFunc("chipletd_busy_workers",
		"Worker-pool tasks currently executing.",
		func() float64 { return float64(s.pool.Running()) })
	s.reg.GaugeFunc("chipletd_cache_entries",
		"Entries resident in the result cache.",
		func() float64 { return float64(s.cache.Len()) })
	// The evaluation engine is the second, finer-grained memo tier under the
	// result cache: it deduplicates individual simulations across requests
	// that miss the (whole-request) cache above. Its counters live on the
	// engines themselves, so they are exported as callback-backed counters.
	s.reg.CounterFunc("chipletd_eval_memo_hits_total",
		"Engine simulation lookups answered from the shared memo.",
		func() float64 { return float64(s.engines.Stats().Hits) })
	s.reg.CounterFunc("chipletd_eval_memo_misses_total",
		"Engine simulation lookups that computed a fresh simulation.",
		func() float64 { return float64(s.engines.Stats().Misses) })
	s.reg.CounterFunc("chipletd_eval_dedup_waits_total",
		"Engine simulation lookups that joined another caller's in-flight computation.",
		func() float64 { return float64(s.engines.Stats().DedupWaits) })
	// Fidelity-tier counters: evaluations decided by each surrogate tier
	// without a full simulation, plus the calibration telemetry the drift
	// check watches. surrogate_hits stays the scalar+spatial total so
	// existing dashboards keep working. All callbacks read engine stats
	// snapshots only — scraping /metrics never triggers a calibration.
	s.reg.CounterFunc("chipletd_eval_surrogate_hits_total",
		"Engine evaluations decided by any surrogate tier (scalar + spatial).",
		func() float64 { st := s.engines.Stats(); return float64(st.ScalarHits + st.SpatialHits) })
	s.reg.CounterFunc("chipletd_eval_scalar_hits_total",
		"Engine evaluations decided by the scalar DVFS-rescaling surrogate.",
		func() float64 { return float64(s.engines.Stats().ScalarHits) })
	s.reg.CounterFunc("chipletd_eval_spatial_hits_total",
		"Engine evaluations decided by the spatial compact-model surrogate.",
		func() float64 { return float64(s.engines.Stats().SpatialHits) })
	s.reg.CounterFunc("chipletd_eval_warm_seeds_total",
		"Full simulations seeded from a retained neighbor temperature field.",
		func() float64 { return float64(s.engines.Stats().WarmSeeds) })
	s.reg.CounterFunc("chipletd_eval_model_reuses_total",
		"Thermal model assemblies skipped by the per-engine model cache.",
		func() float64 { return float64(s.engines.Stats().ModelReuses) })
	s.reg.CounterFunc("chipletd_eval_spatial_calibrations_total",
		"Spatial-surrogate calibrations run (one per engine fingerprint and benchmark).",
		func() float64 { return float64(s.engines.Stats().Calibrations) })
	s.reg.GaugeFunc("chipletd_eval_spatial_cal_worst_err_c",
		"Worst recorded spatial-calibration error bound across resident engines (°C).",
		func() float64 { return s.engines.Stats().CalWorstErrC })
	s.reg.GaugeFunc("chipletd_eval_memo_entries",
		"Completed simulations resident across all engine memos.",
		func() float64 { return float64(s.engines.MemoLen()) })
	s.reg.GaugeFunc("chipletd_eval_engines",
		"Evaluation engines resident in the fingerprint-keyed cache.",
		func() float64 { return float64(s.engines.Len()) })
	// Scale-out telemetry: batch coalescing and the memo peer-fetch exchange
	// (both directions — fetches this node issued, and memo lookups it served
	// to peers), plus this node's rendezvous-ownership view.
	s.peerFetches = s.reg.CounterVec("chipletd_peer_fetch_total",
		"Memo peer-fetch attempts by result (hit, miss, error).", "result")
	s.peerFetchSeconds = s.reg.Histogram("chipletd_peer_fetch_seconds",
		"Round-trip latency of successful memo peer fetches.",
		[]float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5})
	s.memoServed = s.reg.CounterVec("chipletd_memo_requests_total",
		"GET /v1/memo lookups served to peers by result (hit, miss).", "result")
	s.batchItems = s.reg.Counter("chipletd_batch_items_total",
		"Items received in /v1/batch requests (after sweep expansion).")
	s.batchCoalesced = s.reg.Counter("chipletd_batch_coalesced_total",
		"Batch items coalesced onto another item's computation within their batch.")
	s.tcoEvals = s.reg.CounterVec("chipletd_tco_evals_total",
		"Fresh server TCO elaborations by fidelity tier (analytic, spatial).", "fidelity")
	s.reg.CounterFunc("chipletd_eval_peer_hits_total",
		"Engine memo misses answered by a peer fetch instead of a local simulation.",
		func() float64 { return float64(s.engines.Stats().PeerHits) })
	s.reg.GaugeFunc("chipletd_shard_nodes",
		"Nodes in the rendezvous ring (0 when sharding is disabled).",
		func() float64 {
			if s.ring == nil {
				return 0
			}
			return float64(len(s.ring.nodes))
		})
	s.reg.GaugeFunc("chipletd_shard_owned_engines",
		"Resident engines whose fingerprint this node owns.",
		func() float64 { return float64(s.ownedEngines()) })
	s.reg.GaugeFunc("chipletd_process_start_time_seconds",
		"Unix time the process started, in seconds.",
		func() float64 { return float64(s.started.UnixNano()) / 1e9 })
	s.registerRuntimeMetrics()
	s.registerExporterMetrics()

	s.mux.HandleFunc("POST /v1/thermal/solve", s.instrument("thermal_solve", s.handleSolve))
	s.mux.HandleFunc("POST /v1/org/search", s.instrument("org_search", s.handleSearch))
	s.mux.HandleFunc("POST /v1/cost", s.instrument("cost", s.handleCost))
	s.mux.HandleFunc("POST /v1/cost/tco", s.instrument("cost_tco", s.handleTCO))
	s.mux.HandleFunc("POST /v1/batch", s.instrument("batch", s.handleBatch))
	s.mux.HandleFunc("GET /v1/memo/{fp}/{key}", s.instrument("memo_fetch", s.handleMemo))
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /debug/solves", s.handleDebugSolves)
	s.mux.HandleFunc("GET /debug/search", s.handleDebugSearch)
	s.mux.HandleFunc("GET /debug/shard", s.handleDebugShard)
	if opts.EnablePprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("POST /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s
}

// Handler returns the routed handler (httptest-friendly).
func (s *Server) Handler() http.Handler { return s.mux }

// Run listens on Options.Addr until ctx is canceled (SIGTERM in cmd/
// chipletd), then drains gracefully: the listener closes, in-flight
// requests run to completion within DrainTimeout, and the worker pool shuts
// down.
func (s *Server) Run(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.opts.Addr)
	if err != nil {
		return err
	}
	// The bound address is logged (not just configured Addr) so ":0" runs —
	// tests, the CI smoke step — can discover the ephemeral port.
	s.logger.Info("listening", "addr", ln.Addr().String(),
		"workers", s.opts.Workers, "queue_depth", s.opts.QueueDepth,
		"version", s.build.Version, "revision", s.build.Revision)
	srv := &http.Server{Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	s.logger.Info("draining", "timeout", s.opts.DrainTimeout.String())
	drainCtx, cancel := context.WithTimeout(context.Background(), s.opts.DrainTimeout)
	defer cancel()
	err = srv.Shutdown(drainCtx)
	if perr := s.pool.Shutdown(drainCtx); err == nil {
		err = perr
	}
	// Flush the telemetry queue last, after in-flight requests have finished
	// enqueueing their traces; a nil exporter is a no-op.
	if xerr := s.exporter.Shutdown(drainCtx); xerr != nil {
		s.logger.Warn("exporter shutdown", "err", xerr)
	}
	s.logger.Info("drained", "clean", err == nil)
	return err
}

// Exporter returns the OTLP exporter (nil when export is disabled). Tests
// and embedding callers that serve via Handler instead of Run use it to
// flush or shut down the export queue themselves.
func (s *Server) Exporter() *export.Exporter { return s.exporter }

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// Content negotiation: OpenMetrics when asked for (it carries the
	// per-bucket trace exemplars), classic Prometheus text otherwise.
	if accept := r.Header.Get("Accept"); strings.Contains(accept, "application/openmetrics-text") {
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		_ = s.reg.WriteOpenMetrics(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}
