// Package serve implements chipletd, the long-lived HTTP/JSON serving
// subsystem over the paper's models. Where the one-shot CLIs rebuild
// thermal models and re-run solves per invocation, chipletd amortizes that
// cost fleet-wide behind three reusable components:
//
//   - a content-addressed LRU result cache (internal/serve/cache) keyed by
//     a canonical hash of the request — placement geometry snapped to the
//     0.5 mm grid, DVFS point, active-core count, grid resolution — with
//     singleflight deduplication so concurrent identical requests share one
//     solve;
//   - a bounded worker pool (internal/serve/pool) with an admission queue,
//     per-request deadlines, cancellation that propagates into CG solver
//     iterations and the greedy search loop, and graceful drain on SIGTERM;
//   - an observability layer (internal/serve/metrics) exposed at
//     GET /metrics in Prometheus text format, plus GET /healthz.
//
// Endpoints:
//
//	POST /v1/thermal/solve  floorplan + workload -> peak temperature/power
//	POST /v1/org/search     benchmark, threshold, α/β -> best organization
//	POST /v1/cost           Eqs. (1)-(4) manufacturing cost queries
//	GET  /metrics           Prometheus text exposition
//	GET  /healthz           liveness
package serve

import (
	"context"
	"net/http"
	"runtime"
	"time"

	"chiplet25d/internal/serve/cache"
	"chiplet25d/internal/serve/metrics"
	"chiplet25d/internal/serve/pool"
)

// Options configures a Server.
type Options struct {
	// Addr is the listen address for Run.
	Addr string
	// Workers bounds concurrent solves.
	Workers int
	// QueueDepth bounds the admission queue; beyond it requests get 503.
	QueueDepth int
	// CacheCapacity bounds the result cache in entries.
	CacheCapacity int
	// RequestTimeout is the per-request deadline (504 when exceeded).
	RequestTimeout time.Duration
	// DrainTimeout bounds the graceful SIGTERM drain.
	DrainTimeout time.Duration
	// MaxGridN caps the requested thermal grid so one request cannot ask
	// for an arbitrarily large model.
	MaxGridN int
}

// DefaultOptions returns the production defaults.
func DefaultOptions() Options {
	return Options{
		Addr:           ":8080",
		Workers:        runtime.GOMAXPROCS(0),
		QueueDepth:     64,
		CacheCapacity:  512,
		RequestTimeout: 60 * time.Second,
		DrainTimeout:   30 * time.Second,
		MaxGridN:       128,
	}
}

// withDefaults fills zero fields from DefaultOptions.
func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.Addr == "" {
		o.Addr = d.Addr
	}
	if o.Workers <= 0 {
		o.Workers = d.Workers
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = d.QueueDepth
	}
	if o.CacheCapacity <= 0 {
		o.CacheCapacity = d.CacheCapacity
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = d.RequestTimeout
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = d.DrainTimeout
	}
	if o.MaxGridN <= 0 {
		o.MaxGridN = d.MaxGridN
	}
	return o
}

// Server is the chipletd HTTP serving subsystem.
type Server struct {
	opts  Options
	cache *cache.Cache
	pool  *pool.Pool
	reg   *metrics.Registry
	mux   *http.ServeMux

	requests     *metrics.CounterVec // endpoint, code
	cacheHits    *metrics.CounterVec // endpoint
	cacheMisses  *metrics.CounterVec // endpoint
	solveLatency *metrics.Histogram
	cgIterations *metrics.Counter
	thermalSims  *metrics.Counter
}

// New assembles a server (not yet listening; use Run, or Handler with your
// own http.Server).
func New(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:  opts,
		cache: cache.New(opts.CacheCapacity),
		pool:  pool.New(opts.Workers, opts.QueueDepth),
		reg:   metrics.NewRegistry(),
		mux:   http.NewServeMux(),
	}
	s.requests = s.reg.CounterVec("chipletd_requests_total",
		"HTTP requests by endpoint and status code.", "endpoint", "code")
	s.cacheHits = s.reg.CounterVec("chipletd_cache_hits_total",
		"Requests answered from the content-addressed result cache.", "endpoint")
	s.cacheMisses = s.reg.CounterVec("chipletd_cache_misses_total",
		"Requests that ran a fresh computation.", "endpoint")
	s.solveLatency = s.reg.Histogram("chipletd_solve_latency_seconds",
		"End-to-end latency of compute endpoints (cache hits included).",
		[]float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60})
	s.cgIterations = s.reg.Counter("chipletd_cg_iterations_total",
		"Conjugate-gradient iterations spent in thermal solves.")
	s.thermalSims = s.reg.Counter("chipletd_thermal_sims_total",
		"Full leakage-coupled thermal simulations run.")
	s.reg.GaugeFunc("chipletd_queue_depth",
		"Tasks waiting in the worker-pool admission queue.",
		func() float64 { return float64(s.pool.QueueDepth()) })
	s.reg.GaugeFunc("chipletd_busy_workers",
		"Worker-pool tasks currently executing.",
		func() float64 { return float64(s.pool.Running()) })
	s.reg.GaugeFunc("chipletd_cache_entries",
		"Entries resident in the result cache.",
		func() float64 { return float64(s.cache.Len()) })

	s.mux.HandleFunc("POST /v1/thermal/solve", s.handleSolve)
	s.mux.HandleFunc("POST /v1/org/search", s.handleSearch)
	s.mux.HandleFunc("POST /v1/cost", s.handleCost)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// Handler returns the routed handler (httptest-friendly).
func (s *Server) Handler() http.Handler { return s.mux }

// Run listens on Options.Addr until ctx is canceled (SIGTERM in cmd/
// chipletd), then drains gracefully: the listener closes, in-flight
// requests run to completion within DrainTimeout, and the worker pool shuts
// down.
func (s *Server) Run(ctx context.Context) error {
	srv := &http.Server{Addr: s.opts.Addr, Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), s.opts.DrainTimeout)
	defer cancel()
	err := srv.Shutdown(drainCtx)
	if perr := s.pool.Shutdown(drainCtx); err == nil {
		err = perr
	}
	return err
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write([]byte(`{"status":"ok"}` + "\n"))
}
