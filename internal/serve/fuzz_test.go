package serve

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
)

// FuzzSolveRequestDecode exercises the /v1/thermal/solve request path up to
// (but not including) the solve itself: decodeJSON must never panic, and
// any request that decodes and resolves must produce a stable, well-formed
// content address — the cache's correctness rests on that key.
func FuzzSolveRequestDecode(f *testing.F) {
	f.Add(`{"placement":{"chiplets":1},"benchmark":"cholesky","freq_mhz":1000,"cores":256}`)
	f.Add(`{"placement":{"chiplets":4,"s3_mm":2},"benchmark":"canneal","freq_mhz":533,"cores":128,"grid_n":16}`)
	f.Add(`{"placement":{"chiplets":16,"interposer_mm":40,"s1_mm":0.5,"s2_mm":1},"benchmark":"hpccg","freq_mhz":320,"cores":64}`)
	f.Add(`{"placement":{"chiplets":9,"spacing_mm":1.5},"benchmark":"lu.cont","freq_mhz":400,"cores":32,"grid_n":8}`)
	f.Add(`{"placement":{"chiplets":0}}`)
	f.Add(`{"unknown":true}`)
	f.Add(`{"placement":{"chiplets":1}} extra`)
	f.Add(`[]`)
	f.Fuzz(func(t *testing.T, body string) {
		httpReq := httptest.NewRequest("POST", "/v1/thermal/solve", strings.NewReader(body))
		var req SolveRequest
		if err := decodeJSON(httpReq, &req); err != nil {
			return
		}
		sp, err := req.resolve(64)
		if err != nil {
			return
		}
		key := sp.cacheKey()
		if !strings.HasPrefix(key, "solve:") {
			t.Fatalf("malformed cache key %q", key)
		}
		// Resolving the same decoded request again must address the same
		// cache entry.
		sp2, err := req.resolve(64)
		if err != nil {
			t.Fatalf("second resolve of an accepted request failed: %v", err)
		}
		if k2 := sp2.cacheKey(); k2 != key {
			t.Fatalf("cache key unstable across resolves: %q vs %q", key, k2)
		}
	})
}

// FuzzTCORequestDecode exercises the /v1/cost/tco request path up to (but
// not including) the elaboration: decodeJSON must never panic, and any
// request that decodes and resolves must produce a stable, well-formed
// content address — the batch coalescer's bit-identity guarantee rests on
// that key.
func FuzzTCORequestDecode(f *testing.F) {
	f.Add(`{"chiplets":4,"lane_power_w":220,"lane_gips":180}`)
	f.Add(`{"chiplets":16,"interposer_mm":30,"tech_node":"7nm","lane_power_w":150,"lane_gips":90,"pue":1.1}`)
	f.Add(`{"chiplets":1,"benchmark":"cholesky","freq_mhz":1000,"cores":256}`)
	f.Add(`{"chiplets":4,"benchmark":"canneal","freq_mhz":533,"cores":128,"thermal_check":true,"grid_n":16}`)
	f.Add(`{"chiplets":64,"lane_power_w":100,"lane_gips":50,"max_lanes_per_server":8}`)
	f.Add(`{"chiplets":0}`)
	f.Add(`{"chiplets":4,"lane_power_w":-1,"lane_gips":10}`)
	f.Add(`{"chiplets":4,"lane_power_w":220,"lane_gips":180,"benchmark":"cholesky"}`)
	f.Add(`{"unknown":true}`)
	f.Add(`{"chiplets":4,"lane_power_w":220,"lane_gips":180} extra`)
	f.Fuzz(func(t *testing.T, body string) {
		httpReq := httptest.NewRequest("POST", "/v1/cost/tco", strings.NewReader(body))
		var req TCORequest
		if err := decodeJSON(httpReq, &req); err != nil {
			return
		}
		sp, err := req.resolve(64)
		if err != nil {
			return
		}
		key := sp.cacheKey()
		if !strings.HasPrefix(key, "tco:") {
			t.Fatalf("malformed cache key %q", key)
		}
		// Resolving the same decoded request again must address the same
		// cache entry.
		sp2, err := req.resolve(64)
		if err != nil {
			t.Fatalf("second resolve of an accepted request failed: %v", err)
		}
		if k2 := sp2.cacheKey(); k2 != key {
			t.Fatalf("cache key unstable across resolves: %q vs %q", key, k2)
		}
	})
}

// FuzzSearchRequestDecode exercises the /v1/org/search request path the
// same way: decode, resolve against the paper defaults, and demand a
// stable canonical search key for anything accepted.
func FuzzSearchRequestDecode(f *testing.F) {
	f.Add(`{"benchmark":"canneal"}`)
	f.Add(`{"benchmark":"cholesky","starts":2,"seed":3,"thermal_grid_n":16,"exhaustive":true}`)
	f.Add(`{"benchmark":"hpccg","chiplet_counts":[4,16],"max_norm_cost":1}`)
	f.Add(`{"custom_benchmark":{"name":"x","cpi":1,"mem_ratio":0.1},"interposer_step_mm":5}`)
	f.Add(`{"benchmark":""}`)
	f.Add(`{"exhaustive":"yes"}`)
	f.Add(`{"benchmark":"canneal"}{"benchmark":"canneal"}`)
	f.Fuzz(func(t *testing.T, body string) {
		httpReq := httptest.NewRequest("POST", "/v1/org/search", bytes.NewReader([]byte(body)))
		var req SearchRequest
		if err := decodeJSON(httpReq, &req); err != nil {
			return
		}
		cfg, err := req.ToConfig()
		if err != nil {
			return
		}
		key, err := searchKey(cfg, req.Exhaustive)
		if err != nil {
			return // validated configs with non-finite floats are unencodable
		}
		if !strings.HasPrefix(key, "search:") {
			t.Fatalf("malformed search key %q", key)
		}
		k2, err := searchKey(cfg, req.Exhaustive)
		if err != nil || k2 != key {
			t.Fatalf("search key unstable: %q vs %q (err %v)", key, k2, err)
		}
	})
}
