package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"
	"time"

	"chiplet25d/internal/cost"
	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/obs"
	"chiplet25d/internal/org"
	"chiplet25d/internal/perf"
	"chiplet25d/internal/power"
)

// ---------------------------------------------------------------------------
// POST /v1/cost/tco

// Fidelity labels for TCOResponse.Fidelity and the chipletd_tco_evals_total
// metric: an elaboration is either pure arithmetic or refined by the
// spatial-surrogate thermal check.
const (
	fidelityAnalytic = "analytic"
	fidelitySpatial  = "spatial"
)

// TCORequest asks for one server/datacenter TCO elaboration. The workload
// comes in exactly one of two forms: an explicit lane draw (lane_power_w +
// lane_gips), or a benchmark operating point (benchmark + freq_mhz + cores)
// whose nominal power and throughput the server derives from the paper's
// models. All datacenter knobs default to cost.DefaultTCOParams.
type TCORequest struct {
	Chiplets     int     `json:"chiplets"`
	InterposerMM float64 `json:"interposer_mm,omitempty"` // 0 = minimum edge
	TechNode     string  `json:"tech_node,omitempty"`     // "" = 45nm base

	// Explicit workload (base-node watts; the node's PowerScale applies).
	LanePowerW float64 `json:"lane_power_w,omitempty"`
	LaneGIPS   float64 `json:"lane_gips,omitempty"`

	// Benchmark workload.
	Benchmark string  `json:"benchmark,omitempty"`
	FreqMHz   float64 `json:"freq_mhz,omitempty"`
	Cores     int     `json:"cores,omitempty"`

	// Datacenter knob overrides.
	PUE                *float64 `json:"pue,omitempty"`
	EnergyUSDPerKWH    *float64 `json:"energy_usd_per_kwh,omitempty"`
	DepreciationYears  *float64 `json:"depreciation_years,omitempty"`
	ServerPowerBudgetW *float64 `json:"server_power_budget_w,omitempty"`
	MaxLanesPerServer  *int     `json:"max_lanes_per_server,omitempty"`

	// Manufacturing overrides (the same knobs as POST /v1/cost).
	D0PerCM2    *float64 `json:"d0_per_cm2,omitempty"`
	BondCostUSD *float64 `json:"bond_cost_usd,omitempty"`

	// ThermalCheck refines the analytic heatsink feasibility with the
	// engine's spatial compact-model surrogate: the lane's operating point
	// is predicted on the paper's geometry and rejected (Reason "thermal")
	// when the predicted peak exceeds the heatsink's max case temperature.
	// Requires a benchmark workload and chiplets 1, 4, or 16 (the spatial
	// surrogate's calibrated classes).
	ThermalCheck bool `json:"thermal_check,omitempty"`
	GridN        int  `json:"grid_n,omitempty"` // calibration grid, default 64
}

// TCOResponse reports one elaboration. The embedded ServerElab carries the
// design's full cost breakdown whether or not it is feasible.
type TCOResponse struct {
	Elab     cost.ServerElab `json:"elab"`
	Fidelity string          `json:"fidelity"`
	// PredPeakC and ThresholdC report the spatial thermal check (present
	// only at fidelity "spatial").
	PredPeakC  float64        `json:"pred_peak_c,omitempty"`
	ThresholdC float64        `json:"threshold_c,omitempty"`
	Cached     bool           `json:"cached"`
	CacheKey   string         `json:"cache_key"`
	ElapsedMS  float64        `json:"elapsed_ms"`
	Trace      *obs.TraceJSON `json:"trace,omitempty"`
}

// tcoSpec is a fully validated TCO request: resolved model constants plus
// the optional spatial-check coordinates.
type tcoSpec struct {
	tco   cost.TCOParams
	costP cost.Params
	lane  cost.LaneDesign

	// Spatial thermal check (check == false leaves the rest zero).
	check bool
	bench perf.Benchmark
	op    power.DVFSPoint
	fIdx  int
	cores int
	gridN int
	pl    floorplan.Placement
	// kthreads is the server's per-solve kernel-thread budget; excluded
	// from cacheKey by the same wall-clock rule as solveSpec.
	kthreads int
}

func (req *TCORequest) resolve(maxGridN int) (*tcoSpec, error) {
	sp := &tcoSpec{tco: cost.DefaultTCOParams(), costP: cost.DefaultParams()}
	sp.tco.Node = req.TechNode
	if req.PUE != nil {
		sp.tco.PUE = *req.PUE
	}
	if req.EnergyUSDPerKWH != nil {
		sp.tco.EnergyUSDPerKWH = *req.EnergyUSDPerKWH
	}
	if req.DepreciationYears != nil {
		sp.tco.DepreciationYears = *req.DepreciationYears
	}
	if req.ServerPowerBudgetW != nil {
		sp.tco.ServerPowerBudgetW = *req.ServerPowerBudgetW
	}
	if req.MaxLanesPerServer != nil {
		sp.tco.MaxLanesPerServer = *req.MaxLanesPerServer
	}
	if req.D0PerCM2 != nil {
		sp.costP.D0PerCM2 = *req.D0PerCM2
	}
	if req.BondCostUSD != nil {
		sp.costP.BondCost = *req.BondCostUSD
	}
	if err := sp.tco.Validate(); err != nil {
		return nil, err
	}
	if err := sp.costP.Validate(); err != nil {
		return nil, err
	}
	n := req.Chiplets
	r := 1
	for r*r < n {
		r++
	}
	if n < 1 || r*r != n {
		return nil, fmt.Errorf("chiplets %d is not a perfect square", n)
	}
	sp.lane = cost.LaneDesign{Chiplets: n, InterposerEdgeMM: req.InterposerMM}
	if n == 1 {
		// The monolithic baseline has no interposer: canonicalize the edge
		// to zero so every n=1 request shares one cache entry.
		sp.lane.InterposerEdgeMM = 0
	}

	explicit := req.LanePowerW != 0 || req.LaneGIPS != 0
	switch {
	case explicit && req.Benchmark != "":
		return nil, fmt.Errorf("set either lane_power_w/lane_gips or a benchmark workload, not both")
	case explicit:
		if req.LanePowerW <= 0 || req.LaneGIPS <= 0 {
			return nil, fmt.Errorf("explicit workloads need both lane_power_w and lane_gips positive")
		}
		if req.ThermalCheck {
			return nil, fmt.Errorf("thermal_check needs a benchmark workload (the surrogate predicts benchmark power maps)")
		}
		sp.lane.LanePowerW = req.LanePowerW
		sp.lane.LaneGIPS = req.LaneGIPS
	case req.Benchmark != "":
		b, err := perf.ByName(req.Benchmark)
		if err != nil {
			return nil, err
		}
		fIdx := -1
		for i, op := range power.FrequencySet {
			if op.FreqMHz == req.FreqMHz {
				fIdx = i
				break
			}
		}
		if fIdx < 0 {
			return nil, fmt.Errorf("freq_mhz %g not in the DVFS table %v", req.FreqMHz, power.FrequencySet)
		}
		if req.Cores < 1 || req.Cores > floorplan.NumCores {
			return nil, fmt.Errorf("cores %d out of range [1, %d]", req.Cores, floorplan.NumCores)
		}
		op := power.FrequencySet[fIdx]
		sp.bench, sp.op, sp.fIdx, sp.cores = b, op, fIdx, req.Cores
		sp.lane.LanePowerW = power.TotalNominal(b.RefCoreW, req.Cores, op, power.DefaultLeakage())
		sp.lane.LaneGIPS = b.IPS(op, req.Cores)
	default:
		return nil, fmt.Errorf("set a workload: lane_power_w/lane_gips or benchmark/freq_mhz/cores")
	}

	if req.ThermalCheck {
		if n != 1 && n != 4 && n != 16 {
			return nil, fmt.Errorf("thermal_check supports chiplets 1, 4, or 16 (spatial surrogate classes), got %d", n)
		}
		gridN := req.GridN
		if gridN == 0 {
			gridN = 64
		}
		if gridN < 4 || gridN%4 != 0 || gridN > maxGridN {
			return nil, fmt.Errorf("grid_n %d must be a multiple of 4 in [4, %d]", gridN, maxGridN)
		}
		var (
			pl  floorplan.Placement
			err error
		)
		switch {
		case n == 1:
			pl = floorplan.SingleChip()
		case req.InterposerMM == 0:
			pl, err = floorplan.UniformGrid(r, 0)
		default:
			pl, err = floorplan.UniformGridForInterposer(r, req.InterposerMM)
		}
		if err != nil {
			return nil, fmt.Errorf("thermal_check placement: %w", err)
		}
		sp.check = true
		sp.gridN = gridN
		sp.pl = pl
	}
	return sp, nil
}

// cacheKey is the content address of the elaboration: every resolved model
// constant participates (the elaboration depends continuously on all of
// them), plus the spatial-check coordinates when enabled. kthreads is
// excluded — it changes wall clock only.
func (sp *tcoSpec) cacheKey() string {
	h := sha256.Sum256([]byte(fmt.Sprintf(
		"tco|v1|node=%s|hs=%g,%g,%g,%g,%g,%g,%g|srv=%g,%g,%g,%d,%g|dc=%g,%g,%g|mfg=%g,%g|lane=%d,%g,%g,%g|check=%v|bench=%s|f=%d|p=%d|grid=%d",
		sp.tco.Node,
		sp.tco.Heatsink.MaxCaseC, sp.tco.Heatsink.AmbientC, sp.tco.Heatsink.SinkRCPerW,
		sp.tco.Heatsink.SpreadRCCM2PerW, sp.tco.Heatsink.FringeCM,
		sp.tco.Heatsink.BaseCostUSD, sp.tco.Heatsink.CostUSDPerW,
		sp.tco.ServerOverheadUSD, sp.tco.ServerOverheadW, sp.tco.PSUUSDPerW,
		sp.tco.MaxLanesPerServer, sp.tco.ServerPowerBudgetW,
		sp.tco.PUE, sp.tco.EnergyUSDPerKWH, sp.tco.DepreciationYears,
		sp.costP.D0PerCM2, sp.costP.BondCost,
		sp.lane.Chiplets, sp.lane.InterposerEdgeMM, sp.lane.LanePowerW, sp.lane.LaneGIPS,
		sp.check, sp.bench.Name, sp.fIdx, sp.cores, sp.gridN)))
	return "tco:" + hex.EncodeToString(h[:])
}

// engineConfig maps the spatial-check coordinates onto the engine
// configuration whose physics fingerprint selects the process-wide engine —
// the same substrate /v1/thermal/solve and searches on this grid use, so
// the check shares their calibrations and memos.
func (sp *tcoSpec) engineConfig() org.Config {
	cfg := org.DefaultConfig(sp.bench)
	cfg.Thermal.Nx, cfg.Thermal.Ny = sp.gridN, sp.gridN
	cfg.Thermal.KernelThreads = sp.kthreads
	cfg.SpatialSurrogate = true
	return cfg
}

// resolveTCO validates a TCO request and returns the spec with its canonical
// cache key — the normal form the batch coalescer dedups on.
func (s *Server) resolveTCO(req *TCORequest) (*tcoSpec, string, error) {
	r := *req
	if r.TechNode == "" && s.opts.TCONode != "" {
		// Requests that do not pin a node inherit the daemon's default; the
		// resolved node lands in the cache key below.
		r.TechNode = s.opts.TCONode
	}
	sp, err := r.resolve(s.opts.MaxGridN)
	if err != nil {
		return nil, "", err
	}
	sp.kthreads = s.opts.KernelThreads
	return sp, sp.cacheKey(), nil
}

// tcoComputer returns the pool-task body for one resolved elaboration — the
// computation shared by POST /v1/cost/tco and batch tco items. The analytic
// elaboration is sub-microsecond; a spatial thermal check costs one
// surrogate prediction (plus calibration on the engine's first use).
func (s *Server) tcoComputer(sp *tcoSpec, key string) func(context.Context) (any, error) {
	return func(taskCtx context.Context) (any, error) {
		computeStart := time.Now()
		elab, err := sp.tco.ElaborateServer(sp.costP, sp.lane)
		if err != nil {
			return nil, err
		}
		resp := &TCOResponse{Elab: elab, Fidelity: fidelityAnalytic}
		if sp.check && elab.Feasible {
			eng, err := s.engine(sp.engineConfig())
			if err != nil {
				return nil, err
			}
			pred, err := eng.SpatialPredictPeakC(taskCtx, sp.bench, sp.pl, sp.op, sp.cores)
			if err != nil {
				return nil, err
			}
			resp.Fidelity = fidelitySpatial
			resp.PredPeakC = pred
			resp.ThresholdC = sp.tco.Heatsink.MaxCaseC
			if pred > resp.ThresholdC {
				resp.Elab.Feasible = false
				resp.Elab.Reason = cost.ReasonThermal
				resp.Elab.LanesPerServer = 0
			}
		}
		s.tcoEvals.With(resp.Fidelity).Inc()
		// One-event audit record: which design was elaborated, at what
		// fidelity, and why it was (in)feasible.
		al := org.NewAuditLog(1)
		al.Add(org.AuditEvent{
			Kind:     org.AuditTCOEval,
			N:        sp.lane.Chiplets,
			EdgeMM:   resp.Elab.InterposerEdgeMM,
			FreqMHz:  sp.op.FreqMHz,
			Cores:    sp.cores,
			Fidelity: resp.Fidelity,
			PredC:    resp.PredPeakC,
			BoundC:   resp.ThresholdC,
			Reason:   resp.Elab.Reason,
		})
		s.audits.add(auditRecord{
			RequestID: obs.RequestID(taskCtx),
			CacheKey:  key,
			Start:     computeStart,
			ElapsedMS: float64(time.Since(computeStart).Microseconds()) / 1e3,
			Feasible:  resp.Elab.Feasible,
			Trail:     al.Trail(),
		})
		return resp, nil
	}
}

func (s *Server) handleTCO(w http.ResponseWriter, r *http.Request) {
	const endpoint = "cost_tco"
	start := time.Now()
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	defer cancel()
	var req TCORequest
	if err := decodeJSON(r, &req); err != nil {
		s.fail(w, r, endpoint, http.StatusBadRequest, err, start)
		return
	}
	sp, key, err := s.resolveTCO(&req)
	if err != nil {
		s.fail(w, r, endpoint, http.StatusBadRequest, err, start)
		return
	}
	ctx, csp := obs.Start(ctx, "cache.lookup")
	val, hit, err := s.cache.Do(ctx, key, func(runCtx context.Context) (any, error) {
		runCtx = obs.Reattach(runCtx, ctx)
		return s.pool.Do(runCtx, s.tcoComputer(sp, key))
	})
	csp.SetAttr("hit", hit)
	csp.SetAttr("key", key)
	csp.End()
	if err != nil {
		s.fail(w, r, endpoint, errStatus(err), err, start)
		return
	}
	if hit {
		s.cacheHits.With(endpoint).Inc()
	} else {
		s.cacheMisses.With(endpoint).Inc()
	}
	resp := *(val.(*TCOResponse)) // copy: the cached value is shared
	resp.Cached = hit
	resp.CacheKey = key
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1e3
	if wantTrace(r) {
		resp.Trace = snapshotTrace(ctx)
	}
	s.finish(w, endpoint, http.StatusOK, resp, start)
}
