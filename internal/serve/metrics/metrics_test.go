package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestExposition pins the text format: HELP/TYPE headers, labeled and
// unlabeled counters, gauges, and cumulative histogram buckets.
func TestExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("widgets_total", "Widgets made.")
	c.Add(3)
	v := r.CounterVec("requests_total", "Requests by endpoint and code.", "endpoint", "code")
	v.With("solve", "200").Add(2)
	v.With("solve", "400").Inc()
	v.With("cost", "200").Inc()
	r.GaugeFunc("queue_depth", "Tasks waiting.", func() float64 { return 5 })
	h := r.Histogram("latency_seconds", "Latency.", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(99)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP widgets_total Widgets made.\n# TYPE widgets_total counter\nwidgets_total 3\n",
		"# TYPE requests_total counter",
		`requests_total{endpoint="cost",code="200"} 1`,
		`requests_total{endpoint="solve",code="200"} 2`,
		`requests_total{endpoint="solve",code="400"} 1`,
		"# TYPE queue_depth gauge\nqueue_depth 5\n",
		`latency_seconds_bucket{le="0.1"} 1`,
		`latency_seconds_bucket{le="1"} 2`,
		`latency_seconds_bucket{le="10"} 2`,
		`latency_seconds_bucket{le="+Inf"} 3`,
		"latency_seconds_sum 99.55",
		"latency_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

// TestGaugeVecExposition covers the settable labeled gauge used for build
// info and in-flight tracking.
func TestGaugeVecExposition(t *testing.T) {
	r := NewRegistry()
	g := r.GaugeVec("build_info", "Build metadata.", "version", "revision")
	g.With("v1.2", "abc123").Set(1)
	inflight := r.GaugeVec("inflight", "In-flight requests.", "route")
	inflight.With("solve").Inc()
	inflight.With("solve").Inc()
	inflight.With("solve").Dec()
	inflight.With("search").Add(3)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE build_info gauge",
		`build_info{version="v1.2",revision="abc123"} 1`,
		`inflight{route="solve"} 1`,
		`inflight{route="search"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

// TestHistogramVecExposition covers labeled histograms (per-stage solve
// durations): every child shares the family bounds and renders cumulative
// buckets with the le label appended after the family labels.
func TestHistogramVecExposition(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("stage_seconds", "Stage durations.", []float64{0.1, 1}, "stage")
	v.With("thermal").Observe(0.05)
	v.With("thermal").Observe(0.5)
	v.With("floorplan").Observe(5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE stage_seconds histogram",
		`stage_seconds_bucket{stage="thermal",le="0.1"} 1`,
		`stage_seconds_bucket{stage="thermal",le="1"} 2`,
		`stage_seconds_bucket{stage="thermal",le="+Inf"} 2`,
		`stage_seconds_sum{stage="thermal"} 0.55`,
		`stage_seconds_count{stage="thermal"} 2`,
		`stage_seconds_bucket{stage="floorplan",le="+Inf"} 1`,
		`stage_seconds_sum{stage="floorplan"} 5`,
		`stage_seconds_count{stage="floorplan"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

// TestLabelOrderDeterminism verifies exposition output is identical no
// matter the order in which label permutations were first observed.
func TestLabelOrderDeterminism(t *testing.T) {
	perms := [][][2]string{
		{{"solve", "200"}, {"solve", "400"}, {"cost", "200"}, {"cost", "499"}},
		{{"cost", "499"}, {"cost", "200"}, {"solve", "400"}, {"solve", "200"}},
		{{"solve", "400"}, {"cost", "499"}, {"solve", "200"}, {"cost", "200"}},
	}
	var first string
	for i, perm := range perms {
		r := NewRegistry()
		cv := r.CounterVec("req_total", "x", "endpoint", "code")
		gv := r.GaugeVec("inflight", "x", "endpoint", "code")
		hv := r.HistogramVec("lat", "x", []float64{1}, "endpoint", "code")
		for _, p := range perm {
			cv.With(p[0], p[1]).Inc()
			gv.With(p[0], p[1]).Set(2)
			hv.With(p[0], p[1]).Observe(0.5)
		}
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = sb.String()
		} else if sb.String() != first {
			t.Errorf("insertion order %d changed exposition:\n--- first ---\n%s--- got ---\n%s", i, first, sb.String())
		}
	}
	// Children must sort element-wise by label values.
	idx := func(s string) int { return strings.Index(first, s) }
	if !(idx(`req_total{endpoint="cost",code="200"}`) < idx(`req_total{endpoint="cost",code="499"}`) &&
		idx(`req_total{endpoint="cost",code="499"}`) < idx(`req_total{endpoint="solve",code="200"}`) &&
		idx(`req_total{endpoint="solve",code="200"}`) < idx(`req_total{endpoint="solve",code="400"}`)) {
		t.Errorf("counter children not sorted element-wise:\n%s", first)
	}
}

// TestVecLabelArityPanics guards against a With call whose value count
// does not match the family's declared labels.
func TestVecLabelArityPanics(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("arity", "x", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch did not panic")
		}
	}()
	v.With("only-one")
}

// TestCounterConcurrency exercises the lock-free counter under parallel
// increments (run with -race).
func TestCounterConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n", "n")
	v := r.CounterVec("m", "m", "l")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				v.With("x").Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %v, want 8000", c.Value())
	}
	if v.With("x").Value() != 8000 {
		t.Fatalf("vec counter = %v, want 8000", v.With("x").Value())
	}
}

// TestDuplicateRegistrationPanics guards against silent metric collisions.
func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "first")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("dup", "second")
}

// TestLabelEscaping pins the wire bytes for label values containing the
// exposition format's three escapable characters. Each must be escaped
// exactly once: the old path ran escaped values through %q as well, which
// double-escaped backslashes and quotes.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("esc_total", "Escaping.", "path")
	v.With(`C:\temp\"x"` + "\nnext").Inc()

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	want := `esc_total{path="C:\\temp\\\"x\"\nnext"} 1`
	if !strings.Contains(out, want) {
		t.Errorf("exposition missing %s in:\n%s", want, out)
	}
	if strings.Contains(out, `\\\\`) {
		t.Errorf("backslash double-escaped:\n%s", out)
	}
	// A raw (unescaped) newline inside a label value would split the sample
	// across lines and break every parser.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "esc_total{") && !strings.HasSuffix(line, "} 1") {
			t.Errorf("label value leaked a raw newline: %q", line)
		}
	}
}

// TestHelpEscaping: HELP text escapes backslash and newline but keeps
// quotes literal (they are legal in help).
func TestHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("h_total", "line one\nline \"two\" \\ end")
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP h_total line one\nline "two" \\ end`
	if !strings.Contains(sb.String(), want) {
		t.Errorf("exposition missing %q in:\n%s", want, sb.String())
	}
}

// TestOpenMetricsExemplars: exemplars attach to the bucket their value
// lands in, render only in the OpenMetrics exposition, and the newest
// observation per bucket wins.
func TestOpenMetricsExemplars(t *testing.T) {
	restore := timeNow
	defer func() { timeNow = restore }()
	timeNow = func() time.Time { return time.UnixMilli(1700000000500) }

	r := NewRegistry()
	v := r.HistogramVec("stage_seconds", "Stages.", []float64{0.1, 1}, "stage")
	v.With("sim").ObserveWithExemplar(0.05, "trace_id", "aaa111", "fidelity", "full")
	v.With("sim").ObserveWithExemplar(0.07, "trace_id", "bbb222", "fidelity", "spatial")
	v.With("sim").ObserveWithExemplar(50, "trace_id", "ccc333")
	u := r.Histogram("solve_seconds", "Solve.", []float64{1})
	u.ObserveWithExemplar(0.5, "trace_id", "ddd444")

	var om strings.Builder
	if err := r.WriteOpenMetrics(&om); err != nil {
		t.Fatal(err)
	}
	out := om.String()
	for _, want := range []string{
		// Replacement: bbb222 overwrote aaa111 in the 0.1 bucket.
		`stage_seconds_bucket{stage="sim",le="0.1"} 2 # {trace_id="bbb222",fidelity="spatial"} 0.07 1700000000.500`,
		// +Inf bucket exemplar, no fidelity pair.
		`stage_seconds_bucket{stage="sim",le="+Inf"} 3 # {trace_id="ccc333"} 50 1700000000.500`,
		// Unlabeled histogram exemplar.
		`solve_seconds_bucket{le="1"} 1 # {trace_id="ddd444"} 0.5 1700000000.500`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("OpenMetrics exposition missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "aaa111") {
		t.Error("replaced exemplar still present")
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Error("OpenMetrics exposition missing # EOF")
	}

	var classic strings.Builder
	if err := r.WritePrometheus(&classic); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(classic.String(), "# {") {
		t.Errorf("0.0.4 exposition leaked exemplars:\n%s", classic.String())
	}
}

// TestSnapshotAPI covers the plain-data Snapshot form protocol exporters
// consume: every family kind must round-trip its state, with labeled
// children in exposition order.
func TestSnapshotAPI(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "Plain counter.").Add(2)
	r.CounterFunc("cf_total", "Callback counter.", func() float64 { return 7 })
	r.GaugeFunc("g", "Callback gauge.", func() float64 { return 5 })
	cv := r.CounterVec("cv_total", "Labeled counter.", "k")
	cv.With("b").Add(3)
	cv.With("a").Inc()
	gv := r.GaugeVec("gv", "Labeled gauge.", "k")
	gv.With("x").Set(9)
	h := r.Histogram("h_seconds", "Histogram.", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(99)
	hv := r.HistogramVec("hv_seconds", "Labeled histogram.", []float64{1}, "k")
	hv.With("y").Observe(2)
	r.HistogramFunc("hf_seconds", "Callback histogram.", func() HistSnapshot {
		return HistSnapshot{Bounds: []float64{1, 10}, Counts: []uint64{1, 2, 3}, Sum: 40, Count: 6}
	})

	byName := map[string]FamilySnapshot{}
	for _, fs := range r.Snapshot() {
		byName[fs.Name] = fs
	}
	if got := byName["c_total"]; got.Type != "counter" || got.Points[0].Value != 2 {
		t.Errorf("c_total snapshot: %+v", got)
	}
	if got := byName["cf_total"]; got.Type != "counter" || got.Points[0].Value != 7 {
		t.Errorf("cf_total snapshot: %+v", got)
	}
	if got := byName["g"]; got.Points[0].Value != 5 {
		t.Errorf("g snapshot: %+v", got)
	}
	cvs := byName["cv_total"]
	if len(cvs.Points) != 2 || cvs.Points[0].Labels[0] != [2]string{"k", "a"} ||
		cvs.Points[0].Value != 1 || cvs.Points[1].Value != 3 {
		t.Errorf("cv_total snapshot not in exposition order: %+v", cvs.Points)
	}
	if got := byName["gv"]; got.Points[0].Value != 9 || got.Points[0].Labels[0] != [2]string{"k", "x"} {
		t.Errorf("gv snapshot: %+v", got)
	}
	hs := byName["h_seconds"].Points[0].Hist
	if hs == nil || hs.Count != 2 || hs.Sum != 99.5 ||
		len(hs.Counts) != 3 || hs.Counts[0] != 1 || hs.Counts[2] != 1 {
		t.Errorf("h_seconds snapshot: %+v", hs)
	}
	hvs := byName["hv_seconds"].Points[0]
	if hvs.Hist == nil || hvs.Hist.Count != 1 || hvs.Labels[0] != [2]string{"k", "y"} {
		t.Errorf("hv_seconds snapshot: %+v", hvs)
	}
	if got := byName["hf_seconds"].Points[0].Hist; got == nil || got.Count != 6 || got.Sum != 40 {
		t.Errorf("hf_seconds snapshot: %+v", got)
	}
}

// TestHistogramFuncExposition covers the callback-histogram text rendering:
// cumulative buckets from per-bound counts, the +Inf overflow slot, and the
// le label spliced into empty and non-empty label sets.
func TestHistogramFuncExposition(t *testing.T) {
	r := NewRegistry()
	r.HistogramFunc("pause_seconds", "GC pauses.", func() HistSnapshot {
		return HistSnapshot{Bounds: []float64{0.1, 1}, Counts: []uint64{2, 3, 1}, Sum: 4.5, Count: 6}
	})
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`pause_seconds_bucket{le="0.1"} 2`,
		`pause_seconds_bucket{le="1"} 5`,
		`pause_seconds_bucket{le="+Inf"} 6`,
		"pause_seconds_sum 4.5",
		"pause_seconds_count 6",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	if got := mergeLe(`{k="v"}`, "+Inf"); got != `{k="v",le="+Inf"}` {
		t.Errorf("mergeLe spliced %q", got)
	}
}
