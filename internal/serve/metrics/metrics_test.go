package metrics

import (
	"strings"
	"sync"
	"testing"
)

// TestExposition pins the text format: HELP/TYPE headers, labeled and
// unlabeled counters, gauges, and cumulative histogram buckets.
func TestExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("widgets_total", "Widgets made.")
	c.Add(3)
	v := r.CounterVec("requests_total", "Requests by endpoint and code.", "endpoint", "code")
	v.With("solve", "200").Add(2)
	v.With("solve", "400").Inc()
	v.With("cost", "200").Inc()
	r.GaugeFunc("queue_depth", "Tasks waiting.", func() float64 { return 5 })
	h := r.Histogram("latency_seconds", "Latency.", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(99)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP widgets_total Widgets made.\n# TYPE widgets_total counter\nwidgets_total 3\n",
		"# TYPE requests_total counter",
		`requests_total{endpoint="cost",code="200"} 1`,
		`requests_total{endpoint="solve",code="200"} 2`,
		`requests_total{endpoint="solve",code="400"} 1`,
		"# TYPE queue_depth gauge\nqueue_depth 5\n",
		`latency_seconds_bucket{le="0.1"} 1`,
		`latency_seconds_bucket{le="1"} 2`,
		`latency_seconds_bucket{le="10"} 2`,
		`latency_seconds_bucket{le="+Inf"} 3`,
		"latency_seconds_sum 99.55",
		"latency_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

// TestCounterConcurrency exercises the lock-free counter under parallel
// increments (run with -race).
func TestCounterConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n", "n")
	v := r.CounterVec("m", "m", "l")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				v.With("x").Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %v, want 8000", c.Value())
	}
	if v.With("x").Value() != 8000 {
		t.Fatalf("vec counter = %v, want 8000", v.With("x").Value())
	}
}

// TestDuplicateRegistrationPanics guards against silent metric collisions.
func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "first")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("dup", "second")
}
