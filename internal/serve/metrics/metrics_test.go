package metrics

import (
	"strings"
	"sync"
	"testing"
)

// TestExposition pins the text format: HELP/TYPE headers, labeled and
// unlabeled counters, gauges, and cumulative histogram buckets.
func TestExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("widgets_total", "Widgets made.")
	c.Add(3)
	v := r.CounterVec("requests_total", "Requests by endpoint and code.", "endpoint", "code")
	v.With("solve", "200").Add(2)
	v.With("solve", "400").Inc()
	v.With("cost", "200").Inc()
	r.GaugeFunc("queue_depth", "Tasks waiting.", func() float64 { return 5 })
	h := r.Histogram("latency_seconds", "Latency.", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(99)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP widgets_total Widgets made.\n# TYPE widgets_total counter\nwidgets_total 3\n",
		"# TYPE requests_total counter",
		`requests_total{endpoint="cost",code="200"} 1`,
		`requests_total{endpoint="solve",code="200"} 2`,
		`requests_total{endpoint="solve",code="400"} 1`,
		"# TYPE queue_depth gauge\nqueue_depth 5\n",
		`latency_seconds_bucket{le="0.1"} 1`,
		`latency_seconds_bucket{le="1"} 2`,
		`latency_seconds_bucket{le="10"} 2`,
		`latency_seconds_bucket{le="+Inf"} 3`,
		"latency_seconds_sum 99.55",
		"latency_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

// TestGaugeVecExposition covers the settable labeled gauge used for build
// info and in-flight tracking.
func TestGaugeVecExposition(t *testing.T) {
	r := NewRegistry()
	g := r.GaugeVec("build_info", "Build metadata.", "version", "revision")
	g.With("v1.2", "abc123").Set(1)
	inflight := r.GaugeVec("inflight", "In-flight requests.", "route")
	inflight.With("solve").Inc()
	inflight.With("solve").Inc()
	inflight.With("solve").Dec()
	inflight.With("search").Add(3)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE build_info gauge",
		`build_info{version="v1.2",revision="abc123"} 1`,
		`inflight{route="solve"} 1`,
		`inflight{route="search"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

// TestHistogramVecExposition covers labeled histograms (per-stage solve
// durations): every child shares the family bounds and renders cumulative
// buckets with the le label appended after the family labels.
func TestHistogramVecExposition(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("stage_seconds", "Stage durations.", []float64{0.1, 1}, "stage")
	v.With("thermal").Observe(0.05)
	v.With("thermal").Observe(0.5)
	v.With("floorplan").Observe(5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE stage_seconds histogram",
		`stage_seconds_bucket{stage="thermal",le="0.1"} 1`,
		`stage_seconds_bucket{stage="thermal",le="1"} 2`,
		`stage_seconds_bucket{stage="thermal",le="+Inf"} 2`,
		`stage_seconds_sum{stage="thermal"} 0.55`,
		`stage_seconds_count{stage="thermal"} 2`,
		`stage_seconds_bucket{stage="floorplan",le="+Inf"} 1`,
		`stage_seconds_sum{stage="floorplan"} 5`,
		`stage_seconds_count{stage="floorplan"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

// TestLabelOrderDeterminism verifies exposition output is identical no
// matter the order in which label permutations were first observed.
func TestLabelOrderDeterminism(t *testing.T) {
	perms := [][][2]string{
		{{"solve", "200"}, {"solve", "400"}, {"cost", "200"}, {"cost", "499"}},
		{{"cost", "499"}, {"cost", "200"}, {"solve", "400"}, {"solve", "200"}},
		{{"solve", "400"}, {"cost", "499"}, {"solve", "200"}, {"cost", "200"}},
	}
	var first string
	for i, perm := range perms {
		r := NewRegistry()
		cv := r.CounterVec("req_total", "x", "endpoint", "code")
		gv := r.GaugeVec("inflight", "x", "endpoint", "code")
		hv := r.HistogramVec("lat", "x", []float64{1}, "endpoint", "code")
		for _, p := range perm {
			cv.With(p[0], p[1]).Inc()
			gv.With(p[0], p[1]).Set(2)
			hv.With(p[0], p[1]).Observe(0.5)
		}
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = sb.String()
		} else if sb.String() != first {
			t.Errorf("insertion order %d changed exposition:\n--- first ---\n%s--- got ---\n%s", i, first, sb.String())
		}
	}
	// Children must sort element-wise by label values.
	idx := func(s string) int { return strings.Index(first, s) }
	if !(idx(`req_total{endpoint="cost",code="200"}`) < idx(`req_total{endpoint="cost",code="499"}`) &&
		idx(`req_total{endpoint="cost",code="499"}`) < idx(`req_total{endpoint="solve",code="200"}`) &&
		idx(`req_total{endpoint="solve",code="200"}`) < idx(`req_total{endpoint="solve",code="400"}`)) {
		t.Errorf("counter children not sorted element-wise:\n%s", first)
	}
}

// TestVecLabelArityPanics guards against a With call whose value count
// does not match the family's declared labels.
func TestVecLabelArityPanics(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("arity", "x", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch did not panic")
		}
	}()
	v.With("only-one")
}

// TestCounterConcurrency exercises the lock-free counter under parallel
// increments (run with -race).
func TestCounterConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n", "n")
	v := r.CounterVec("m", "m", "l")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				v.With("x").Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %v, want 8000", c.Value())
	}
	if v.With("x").Value() != 8000 {
		t.Fatalf("vec counter = %v, want 8000", v.With("x").Value())
	}
}

// TestDuplicateRegistrationPanics guards against silent metric collisions.
func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "first")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("dup", "second")
}
