// Package metrics is a minimal, dependency-free Prometheus text-format
// exposition layer for chipletd: counters (optionally labeled), gauges
// backed by callbacks, and fixed-bucket histograms, rendered by a Registry
// in registration order. It implements just the subset of the format the
// daemon needs — https://prometheus.io/docs/instrumenting/exposition_formats/
// version 0.0.4 — so no external client library is required.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing float64 (stored as bits for atomic
// updates without a mutex on the hot path).
type Counter struct {
	bits uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v (must be non-negative to keep the counter monotonic).
func (c *Counter) Add(v float64) {
	for {
		old := atomic.LoadUint64(&c.bits)
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if atomic.CompareAndSwapUint64(&c.bits, old, nw) {
			return
		}
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(atomic.LoadUint64(&c.bits)) }

// CounterVec is a counter family keyed by label values.
type CounterVec struct {
	name   string
	help   string
	labels []string

	mu   sync.Mutex
	kids map[string]*Counter
}

// With returns (creating on first use) the child counter for the given
// label values, which must match the family's label names in count and
// order.
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("metrics: %s expects %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.kids[key]; ok {
		return c
	}
	c := &Counter{}
	v.kids[key] = c
	return c
}

// Gauge is an instantaneous value read from a callback at scrape time
// (e.g. queue depth) so the instrumented component needs no push calls.
type Gauge struct {
	fn func() float64
}

// Histogram counts observations into cumulative buckets with fixed upper
// bounds, plus sum and count, matching Prometheus histogram semantics.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds, +Inf implicit
	counts []uint64  // per-bound (non-cumulative) counts
	inf    uint64
	sum    float64
	total  uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sum += v
	h.total++
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.inf++
}

// metric is one registered family for rendering.
type metric struct {
	name string
	help string
	typ  string

	counter *Counter
	vec     *CounterVec
	gauge   *Gauge
	hist    *Histogram
}

// Registry holds metric families and renders them.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	seen    map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{seen: make(map[string]bool)}
}

func (r *Registry) register(m *metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seen[m.name] {
		panic("metrics: duplicate metric " + m.name)
	}
	r.seen[m.name] = true
	r.metrics = append(r.metrics, m)
}

// Counter registers and returns a new unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, help: help, typ: "counter", counter: c})
	return c
}

// CounterVec registers and returns a new labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	v := &CounterVec{name: name, help: help, labels: labels, kids: make(map[string]*Counter)}
	r.register(&metric{name: name, help: help, typ: "counter", vec: v})
	return v
}

// GaugeFunc registers a gauge whose value is fn() at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, typ: "gauge", gauge: &Gauge{fn: fn}})
}

// Histogram registers and returns a histogram with the given ascending
// bucket upper bounds (+Inf is added implicitly).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	h := &Histogram{bounds: bs, counts: make([]uint64, len(bs))}
	r.register(&metric{name: name, help: help, typ: "histogram", hist: h})
	return h
}

// fmtFloat renders a float the way Prometheus clients do: integers without
// a decimal point, +Inf as "+Inf".
func fmtFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// WritePrometheus renders every registered family in text format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	ms := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()
	for _, m := range ms {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.typ); err != nil {
			return err
		}
		switch {
		case m.counter != nil:
			if _, err := fmt.Fprintf(w, "%s %s\n", m.name, fmtFloat(m.counter.Value())); err != nil {
				return err
			}
		case m.vec != nil:
			if err := m.vec.write(w); err != nil {
				return err
			}
		case m.gauge != nil:
			if _, err := fmt.Fprintf(w, "%s %s\n", m.name, fmtFloat(m.gauge.fn())); err != nil {
				return err
			}
		case m.hist != nil:
			if err := m.hist.write(w, m.name); err != nil {
				return err
			}
		}
	}
	return nil
}

func (v *CounterVec) write(w io.Writer) error {
	v.mu.Lock()
	keys := make([]string, 0, len(v.kids))
	for k := range v.kids {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic scrape output
	type row struct {
		key string
		val float64
	}
	rows := make([]row, 0, len(keys))
	for _, k := range keys {
		rows = append(rows, row{k, v.kids[k].Value()})
	}
	v.mu.Unlock()
	for _, rw := range rows {
		values := strings.Split(rw.key, "\x00")
		parts := make([]string, len(values))
		for i, val := range values {
			parts[i] = fmt.Sprintf("%s=%q", v.labels[i], escapeLabel(val))
		}
		if _, err := fmt.Fprintf(w, "%s{%s} %s\n", v.name, strings.Join(parts, ","), fmtFloat(rw.val)); err != nil {
			return err
		}
	}
	return nil
}

func (h *Histogram) write(w io.Writer, name string) error {
	h.mu.Lock()
	bounds := h.bounds
	counts := append([]uint64(nil), h.counts...)
	inf, sum, total := h.inf, h.sum, h.total
	h.mu.Unlock()
	cum := uint64(0)
	for i, b := range bounds {
		cum += counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, fmtFloat(b), cum); err != nil {
			return err
		}
	}
	cum += inf
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, fmtFloat(sum), name, total); err != nil {
		return err
	}
	return nil
}
