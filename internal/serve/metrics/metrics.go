// Package metrics is a minimal, dependency-free Prometheus text-format
// exposition layer for chipletd: counters, settable and callback-backed
// gauges, and fixed-bucket histograms — each optionally labeled — rendered
// by a Registry in registration order. It implements just the subset of the
// format the daemon needs —
// https://prometheus.io/docs/instrumenting/exposition_formats/
// version 0.0.4 — so no external client library is required.
//
// Labeled families (CounterVec, GaugeVec, HistogramVec) share one
// implementation that renders children sorted element-wise by label values,
// so exposition order is deterministic regardless of the order in which
// label permutations were first observed.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing float64 (stored as bits for atomic
// updates without a mutex on the hot path).
type Counter struct {
	bits uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v (must be non-negative to keep the counter monotonic).
func (c *Counter) Add(v float64) {
	for {
		old := atomic.LoadUint64(&c.bits)
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if atomic.CompareAndSwapUint64(&c.bits, old, nw) {
			return
		}
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(atomic.LoadUint64(&c.bits)) }

// GaugeValue is a settable instantaneous value (the child type of a
// GaugeVec; contrast with the callback-backed GaugeFunc).
type GaugeValue struct {
	bits uint64
}

// Set stores v.
func (g *GaugeValue) Set(v float64) { atomic.StoreUint64(&g.bits, math.Float64bits(v)) }

// Add adds v (may be negative).
func (g *GaugeValue) Add(v float64) {
	for {
		old := atomic.LoadUint64(&g.bits)
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if atomic.CompareAndSwapUint64(&g.bits, old, nw) {
			return
		}
	}
}

// Inc adds 1.
func (g *GaugeValue) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *GaugeValue) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *GaugeValue) Value() float64 { return math.Float64frombits(atomic.LoadUint64(&g.bits)) }

// Gauge is an instantaneous value read from a callback at scrape time
// (e.g. queue depth) so the instrumented component needs no push calls.
type Gauge struct {
	fn func() float64
}

// Histogram counts observations into cumulative buckets with fixed upper
// bounds, plus sum and count, matching Prometheus histogram semantics.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds, +Inf implicit
	counts []uint64  // per-bound (non-cumulative) counts
	inf    uint64
	sum    float64
	total  uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sum += v
	h.total++
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.inf++
}

// newHistogram builds an unregistered histogram (family children reuse it).
func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]uint64, len(bs))}
}

// ---------------------------------------------------------------------------
// Labeled families

// labelSep joins label values into a map key. 0x00 sorts before every
// printable byte, so sorting the joined keys lexicographically is identical
// to sorting the label-value tuples element-wise: exposition order is
// deterministic for any insertion order of label permutations.
const labelSep = "\x00"

// family is the shared child registry behind CounterVec, GaugeVec, and
// HistogramVec.
type family[T any] struct {
	name   string
	labels []string
	mk     func() T

	mu   sync.Mutex
	kids map[string]T
}

func newFamily[T any](name string, labels []string, mk func() T) *family[T] {
	return &family[T]{name: name, labels: labels, mk: mk, kids: make(map[string]T)}
}

// with returns (creating on first use) the child for the given label
// values, which must match the family's label names in count and order.
func (f *family[T]) with(values []string) T {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s expects %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, labelSep)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.kids[key]; ok {
		return c
	}
	c := f.mk()
	f.kids[key] = c
	return c
}

// child pairs sorted label values with the child metric for rendering.
type child[T any] struct {
	values []string
	kid    T
}

// sorted snapshots the children ordered element-wise by label values.
func (f *family[T]) sorted() []child[T] {
	f.mu.Lock()
	keys := make([]string, 0, len(f.kids))
	for k := range f.kids {
		keys = append(keys, k)
	}
	sort.Strings(keys) // see labelSep: element-wise deterministic order
	out := make([]child[T], 0, len(keys))
	for _, k := range keys {
		out = append(out, child[T]{values: strings.Split(k, labelSep), kid: f.kids[k]})
	}
	f.mu.Unlock()
	return out
}

// labelString renders {k="v",...} for the family's label names and the
// given values, with extra pairs (e.g. le) appended.
func (f *family[T]) labelString(values []string, extra ...string) string {
	parts := make([]string, 0, len(values)+len(extra)/2)
	for i, v := range values {
		parts = append(parts, fmt.Sprintf("%s=%q", f.labels[i], escapeLabel(v)))
	}
	for i := 0; i+1 < len(extra); i += 2 {
		parts = append(parts, fmt.Sprintf("%s=%q", extra[i], escapeLabel(extra[i+1])))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// CounterVec is a counter family keyed by label values.
type CounterVec struct {
	f *family[*Counter]
}

// With returns (creating on first use) the child counter for the given
// label values.
func (v *CounterVec) With(values ...string) *Counter { return v.f.with(values) }

func (v *CounterVec) write(w io.Writer) error {
	for _, c := range v.f.sorted() {
		if _, err := fmt.Fprintf(w, "%s%s %s\n", v.f.name, v.f.labelString(c.values), fmtFloat(c.kid.Value())); err != nil {
			return err
		}
	}
	return nil
}

// GaugeVec is a settable gauge family keyed by label values (build info,
// in-flight requests per route).
type GaugeVec struct {
	f *family[*GaugeValue]
}

// With returns (creating on first use) the child gauge for the given label
// values.
func (v *GaugeVec) With(values ...string) *GaugeValue { return v.f.with(values) }

func (v *GaugeVec) write(w io.Writer) error {
	for _, c := range v.f.sorted() {
		if _, err := fmt.Fprintf(w, "%s%s %s\n", v.f.name, v.f.labelString(c.values), fmtFloat(c.kid.Value())); err != nil {
			return err
		}
	}
	return nil
}

// HistogramVec is a histogram family keyed by label values; every child
// shares the family's bucket bounds (per-stage solve durations).
type HistogramVec struct {
	f *family[*Histogram]
}

// With returns (creating on first use) the child histogram for the given
// label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.with(values) }

func (v *HistogramVec) write(w io.Writer) error {
	for _, c := range v.f.sorted() {
		if err := c.kid.writeLabeled(w, v.f, c.values); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Registry

// metric is one registered family for rendering.
type metric struct {
	name string
	help string
	typ  string

	counter *Counter
	vec     *CounterVec
	gauge   *Gauge
	gvec    *GaugeVec
	hist    *Histogram
	hvec    *HistogramVec
}

// Registry holds metric families and renders them.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	seen    map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{seen: make(map[string]bool)}
}

func (r *Registry) register(m *metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seen[m.name] {
		panic("metrics: duplicate metric " + m.name)
	}
	r.seen[m.name] = true
	r.metrics = append(r.metrics, m)
}

// Counter registers and returns a new unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, help: help, typ: "counter", counter: c})
	return c
}

// CounterVec registers and returns a new labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	v := &CounterVec{f: newFamily(name, labels, func() *Counter { return &Counter{} })}
	r.register(&metric{name: name, help: help, typ: "counter", vec: v})
	return v
}

// GaugeFunc registers a gauge whose value is fn() at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, typ: "gauge", gauge: &Gauge{fn: fn}})
}

// CounterFunc registers a counter whose value is fn() at scrape time, for
// components that already keep their own monotonic tallies (e.g. the
// evaluation engine's memo counters). fn must be monotonically
// non-decreasing for the exposition to be a valid counter.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, typ: "counter", gauge: &Gauge{fn: fn}})
}

// GaugeVec registers and returns a new labeled settable-gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	v := &GaugeVec{f: newFamily(name, labels, func() *GaugeValue { return &GaugeValue{} })}
	r.register(&metric{name: name, help: help, typ: "gauge", gvec: v})
	return v
}

// Histogram registers and returns a histogram with the given ascending
// bucket upper bounds (+Inf is added implicitly).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := newHistogram(bounds)
	r.register(&metric{name: name, help: help, typ: "histogram", hist: h})
	return h
}

// HistogramVec registers and returns a labeled histogram family whose
// children all share the given bucket bounds.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	v := &HistogramVec{f: newFamily(name, labels, func() *Histogram { return newHistogram(bounds) })}
	r.register(&metric{name: name, help: help, typ: "histogram", hvec: v})
	return v
}

// fmtFloat renders a float the way Prometheus clients do: integers without
// a decimal point, +Inf as "+Inf".
func fmtFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// WritePrometheus renders every registered family in text format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	ms := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()
	for _, m := range ms {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.typ); err != nil {
			return err
		}
		var err error
		switch {
		case m.counter != nil:
			_, err = fmt.Fprintf(w, "%s %s\n", m.name, fmtFloat(m.counter.Value()))
		case m.vec != nil:
			err = m.vec.write(w)
		case m.gauge != nil:
			_, err = fmt.Fprintf(w, "%s %s\n", m.name, fmtFloat(m.gauge.fn()))
		case m.gvec != nil:
			err = m.gvec.write(w)
		case m.hist != nil:
			err = m.hist.write(w, m.name)
		case m.hvec != nil:
			err = m.hvec.write(w)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func (h *Histogram) write(w io.Writer, name string) error {
	bounds, counts, inf, sum, total := h.snapshot()
	cum := uint64(0)
	for i, b := range bounds {
		cum += counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, fmtFloat(b), cum); err != nil {
			return err
		}
	}
	cum += inf
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, fmtFloat(sum), name, total)
	return err
}

// writeLabeled renders one HistogramVec child, merging the family labels
// with the le bucket label.
func (h *Histogram) writeLabeled(w io.Writer, f *family[*Histogram], values []string) error {
	bounds, counts, inf, sum, total := h.snapshot()
	name := f.name
	cum := uint64(0)
	for i, b := range bounds {
		cum += counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, f.labelString(values, "le", fmtFloat(b)), cum); err != nil {
			return err
		}
	}
	cum += inf
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, f.labelString(values, "le", "+Inf"), cum); err != nil {
		return err
	}
	ls := f.labelString(values)
	_, err := fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n", name, ls, fmtFloat(sum), name, ls, total)
	return err
}

func (h *Histogram) snapshot() (bounds []float64, counts []uint64, inf uint64, sum float64, total uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.bounds, append([]uint64(nil), h.counts...), h.inf, h.sum, h.total
}
