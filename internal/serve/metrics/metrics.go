// Package metrics is a minimal, dependency-free Prometheus text-format
// exposition layer for chipletd: counters, settable and callback-backed
// gauges, and fixed-bucket histograms — each optionally labeled — rendered
// by a Registry in registration order. It implements just the subset of the
// format the daemon needs —
// https://prometheus.io/docs/instrumenting/exposition_formats/
// version 0.0.4 — so no external client library is required.
//
// Labeled families (CounterVec, GaugeVec, HistogramVec) share one
// implementation that renders children sorted element-wise by label values,
// so exposition order is deterministic regardless of the order in which
// label permutations were first observed.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing float64 (stored as bits for atomic
// updates without a mutex on the hot path).
type Counter struct {
	bits uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v (must be non-negative to keep the counter monotonic).
func (c *Counter) Add(v float64) {
	for {
		old := atomic.LoadUint64(&c.bits)
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if atomic.CompareAndSwapUint64(&c.bits, old, nw) {
			return
		}
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(atomic.LoadUint64(&c.bits)) }

// GaugeValue is a settable instantaneous value (the child type of a
// GaugeVec; contrast with the callback-backed GaugeFunc).
type GaugeValue struct {
	bits uint64
}

// Set stores v.
func (g *GaugeValue) Set(v float64) { atomic.StoreUint64(&g.bits, math.Float64bits(v)) }

// Add adds v (may be negative).
func (g *GaugeValue) Add(v float64) {
	for {
		old := atomic.LoadUint64(&g.bits)
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if atomic.CompareAndSwapUint64(&g.bits, old, nw) {
			return
		}
	}
}

// Inc adds 1.
func (g *GaugeValue) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *GaugeValue) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *GaugeValue) Value() float64 { return math.Float64frombits(atomic.LoadUint64(&g.bits)) }

// Gauge is an instantaneous value read from a callback at scrape time
// (e.g. queue depth) so the instrumented component needs no push calls.
type Gauge struct {
	fn func() float64
}

// exemplar is the last exemplar observed for one histogram bucket: label
// pairs (trace_id, typically, plus optional dimensions like fidelity), the
// observed value, and its unix-seconds timestamp. Rendered only in
// OpenMetrics exposition.
type exemplar struct {
	pairs []string // key, value, key, value, ...
	value float64
	ts    float64
}

// Histogram counts observations into cumulative buckets with fixed upper
// bounds, plus sum and count, matching Prometheus histogram semantics.
type Histogram struct {
	mu        sync.Mutex
	bounds    []float64 // ascending upper bounds, +Inf implicit
	counts    []uint64  // per-bound (non-cumulative) counts
	inf       uint64
	sum       float64
	total     uint64
	exemplars []exemplar // len(bounds)+1 (last = +Inf), lazily allocated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.observeLocked(v)
}

func (h *Histogram) observeLocked(v float64) int {
	h.sum += v
	h.total++
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return i
		}
	}
	h.inf++
	return len(h.bounds)
}

// ObserveWithExemplar records one value and attaches an exemplar (label
// key/value pairs, e.g. trace_id and fidelity) to the bucket it lands in,
// replacing that bucket's previous exemplar. Exemplars render only in the
// OpenMetrics exposition; the 0.0.4 text format ignores them.
func (h *Histogram) ObserveWithExemplar(v float64, pairs ...string) {
	now := float64(timeNow().UnixMilli()) / 1e3
	h.mu.Lock()
	defer h.mu.Unlock()
	i := h.observeLocked(v)
	if h.exemplars == nil {
		h.exemplars = make([]exemplar, len(h.bounds)+1)
	}
	h.exemplars[i] = exemplar{pairs: pairs, value: v, ts: now}
}

// timeNow is swappable for exposition-format tests.
var timeNow = time.Now

// newHistogram builds an unregistered histogram (family children reuse it).
func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]uint64, len(bs))}
}

// ---------------------------------------------------------------------------
// Labeled families

// labelSep joins label values into a map key. 0x00 sorts before every
// printable byte, so sorting the joined keys lexicographically is identical
// to sorting the label-value tuples element-wise: exposition order is
// deterministic for any insertion order of label permutations.
const labelSep = "\x00"

// family is the shared child registry behind CounterVec, GaugeVec, and
// HistogramVec.
type family[T any] struct {
	name   string
	labels []string
	mk     func() T

	mu   sync.Mutex
	kids map[string]T
}

func newFamily[T any](name string, labels []string, mk func() T) *family[T] {
	return &family[T]{name: name, labels: labels, mk: mk, kids: make(map[string]T)}
}

// with returns (creating on first use) the child for the given label
// values, which must match the family's label names in count and order.
func (f *family[T]) with(values []string) T {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s expects %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, labelSep)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.kids[key]; ok {
		return c
	}
	c := f.mk()
	f.kids[key] = c
	return c
}

// child pairs sorted label values with the child metric for rendering.
type child[T any] struct {
	values []string
	kid    T
}

// sorted snapshots the children ordered element-wise by label values.
func (f *family[T]) sorted() []child[T] {
	f.mu.Lock()
	keys := make([]string, 0, len(f.kids))
	for k := range f.kids {
		keys = append(keys, k)
	}
	sort.Strings(keys) // see labelSep: element-wise deterministic order
	out := make([]child[T], 0, len(keys))
	for _, k := range keys {
		out = append(out, child[T]{values: strings.Split(k, labelSep), kid: f.kids[k]})
	}
	f.mu.Unlock()
	return out
}

// labelString renders {k="v",...} for the family's label names and the
// given values, with extra pairs (e.g. le) appended. Values are quoted
// manually around escapeLabel — running them through %q as well would
// double-escape backslashes and quotes (`a\b` became `"a\\\\b"` on the
// wire, which Prometheus parses back as `a\\b`, not the original value).
func (f *family[T]) labelString(values []string, extra ...string) string {
	parts := make([]string, 0, len(values)+len(extra)/2)
	for i, v := range values {
		parts = append(parts, f.labels[i]+`="`+escapeLabel(v)+`"`)
	}
	for i := 0; i+1 < len(extra); i += 2 {
		parts = append(parts, extra[i]+`="`+escapeLabel(extra[i+1])+`"`)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// CounterVec is a counter family keyed by label values.
type CounterVec struct {
	f *family[*Counter]
}

// With returns (creating on first use) the child counter for the given
// label values.
func (v *CounterVec) With(values ...string) *Counter { return v.f.with(values) }

func (v *CounterVec) write(w io.Writer) error {
	for _, c := range v.f.sorted() {
		if _, err := fmt.Fprintf(w, "%s%s %s\n", v.f.name, v.f.labelString(c.values), fmtFloat(c.kid.Value())); err != nil {
			return err
		}
	}
	return nil
}

// GaugeVec is a settable gauge family keyed by label values (build info,
// in-flight requests per route).
type GaugeVec struct {
	f *family[*GaugeValue]
}

// With returns (creating on first use) the child gauge for the given label
// values.
func (v *GaugeVec) With(values ...string) *GaugeValue { return v.f.with(values) }

func (v *GaugeVec) write(w io.Writer) error {
	for _, c := range v.f.sorted() {
		if _, err := fmt.Fprintf(w, "%s%s %s\n", v.f.name, v.f.labelString(c.values), fmtFloat(c.kid.Value())); err != nil {
			return err
		}
	}
	return nil
}

// HistogramVec is a histogram family keyed by label values; every child
// shares the family's bucket bounds (per-stage solve durations).
type HistogramVec struct {
	f *family[*Histogram]
}

// With returns (creating on first use) the child histogram for the given
// label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.with(values) }

func (v *HistogramVec) write(w io.Writer, om bool) error {
	for _, c := range v.f.sorted() {
		if err := c.kid.writeLabeled(w, v.f, c.values, om); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Registry

// HistSnapshot is one histogram state read at scrape time: per-bound
// (non-cumulative) counts with the +Inf count last, plus sum and total.
// It is both the callback shape for HistogramFunc and the histogram leg of
// the Snapshot API.
type HistSnapshot struct {
	Bounds []float64
	Counts []uint64 // len(Bounds)+1: per-bound counts, then +Inf
	Sum    float64
	Count  uint64
}

// metric is one registered family for rendering.
type metric struct {
	name string
	help string
	typ  string

	counter *Counter
	vec     *CounterVec
	gauge   *Gauge
	gvec    *GaugeVec
	hist    *Histogram
	hvec    *HistogramVec
	histFn  func() HistSnapshot
}

// Registry holds metric families and renders them.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	seen    map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{seen: make(map[string]bool)}
}

func (r *Registry) register(m *metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seen[m.name] {
		panic("metrics: duplicate metric " + m.name)
	}
	r.seen[m.name] = true
	r.metrics = append(r.metrics, m)
}

// Counter registers and returns a new unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, help: help, typ: "counter", counter: c})
	return c
}

// CounterVec registers and returns a new labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	v := &CounterVec{f: newFamily(name, labels, func() *Counter { return &Counter{} })}
	r.register(&metric{name: name, help: help, typ: "counter", vec: v})
	return v
}

// GaugeFunc registers a gauge whose value is fn() at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, typ: "gauge", gauge: &Gauge{fn: fn}})
}

// CounterFunc registers a counter whose value is fn() at scrape time, for
// components that already keep their own monotonic tallies (e.g. the
// evaluation engine's memo counters). fn must be monotonically
// non-decreasing for the exposition to be a valid counter.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, typ: "counter", gauge: &Gauge{fn: fn}})
}

// GaugeVec registers and returns a new labeled settable-gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	v := &GaugeVec{f: newFamily(name, labels, func() *GaugeValue { return &GaugeValue{} })}
	r.register(&metric{name: name, help: help, typ: "gauge", gvec: v})
	return v
}

// Histogram registers and returns a histogram with the given ascending
// bucket upper bounds (+Inf is added implicitly).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := newHistogram(bounds)
	r.register(&metric{name: name, help: help, typ: "histogram", hist: h})
	return h
}

// HistogramVec registers and returns a labeled histogram family whose
// children all share the given bucket bounds.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	v := &HistogramVec{f: newFamily(name, labels, func() *Histogram { return newHistogram(bounds) })}
	r.register(&metric{name: name, help: help, typ: "histogram", hvec: v})
	return v
}

// HistogramFunc registers a histogram whose full state is read from fn at
// scrape time, for sources that already aggregate their own distributions
// (the Go runtime's GC-pause and scheduler-latency histograms). fn must
// return cumulative-over-time, non-decreasing counts for the exposition to
// be a valid Prometheus histogram.
func (r *Registry) HistogramFunc(name, help string, fn func() HistSnapshot) {
	r.register(&metric{name: name, help: help, typ: "histogram", histFn: fn})
}

// fmtFloat renders a float the way Prometheus clients do: integers without
// a decimal point, +Inf as "+Inf".
func fmtFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// escapeLabel escapes a label value per the exposition format: backslash,
// newline, and double quote.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// escapeHelp escapes HELP text per the exposition format: backslash and
// newline only (quotes are legal in help).
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// WritePrometheus renders every registered family in text format 0.0.4.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.write(w, false)
}

// WriteOpenMetrics renders the same families with OpenMetrics extensions:
// histogram buckets carry their exemplars and the output ends with "# EOF".
// It stays within the subset shared with the 0.0.4 format otherwise (family
// names are rendered as registered).
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	if err := r.write(w, true); err != nil {
		return err
	}
	_, err := io.WriteString(w, "# EOF\n")
	return err
}

func (r *Registry) write(w io.Writer, om bool) error {
	r.mu.Lock()
	ms := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()
	for _, m := range ms {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, escapeHelp(m.help), m.name, m.typ); err != nil {
			return err
		}
		var err error
		switch {
		case m.counter != nil:
			_, err = fmt.Fprintf(w, "%s %s\n", m.name, fmtFloat(m.counter.Value()))
		case m.vec != nil:
			err = m.vec.write(w)
		case m.gauge != nil:
			_, err = fmt.Fprintf(w, "%s %s\n", m.name, fmtFloat(m.gauge.fn()))
		case m.gvec != nil:
			err = m.gvec.write(w)
		case m.hist != nil:
			err = m.hist.write(w, m.name, om)
		case m.hvec != nil:
			err = m.hvec.write(w, om)
		case m.histFn != nil:
			err = writeHistSnapshot(w, m.name, "", m.histFn())
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// exemplarSuffix renders the OpenMetrics exemplar annotation for a bucket
// line, or "" when the bucket has none.
func exemplarSuffix(ex exemplar) string {
	if len(ex.pairs) < 2 {
		return ""
	}
	var sb strings.Builder
	sb.WriteString(" # {")
	for i := 0; i+1 < len(ex.pairs); i += 2 {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(ex.pairs[i])
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(ex.pairs[i+1]))
		sb.WriteString(`"`)
	}
	fmt.Fprintf(&sb, "} %s %.3f", fmtFloat(ex.value), ex.ts)
	return sb.String()
}

func (h *Histogram) write(w io.Writer, name string, om bool) error {
	bounds, counts, inf, sum, total, exs := h.snapshot()
	cum := uint64(0)
	for i, b := range bounds {
		cum += counts[i]
		suffix := ""
		if om && i < len(exs) {
			suffix = exemplarSuffix(exs[i])
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d%s\n", name, fmtFloat(b), cum, suffix); err != nil {
			return err
		}
	}
	cum += inf
	suffix := ""
	if om && len(exs) == len(bounds)+1 {
		suffix = exemplarSuffix(exs[len(bounds)])
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d%s\n", name, cum, suffix); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, fmtFloat(sum), name, total)
	return err
}

// writeLabeled renders one HistogramVec child, merging the family labels
// with the le bucket label.
func (h *Histogram) writeLabeled(w io.Writer, f *family[*Histogram], values []string, om bool) error {
	bounds, counts, inf, sum, total, exs := h.snapshot()
	name := f.name
	cum := uint64(0)
	for i, b := range bounds {
		cum += counts[i]
		suffix := ""
		if om && i < len(exs) {
			suffix = exemplarSuffix(exs[i])
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d%s\n", name, f.labelString(values, "le", fmtFloat(b)), cum, suffix); err != nil {
			return err
		}
	}
	cum += inf
	suffix := ""
	if om && len(exs) == len(bounds)+1 {
		suffix = exemplarSuffix(exs[len(bounds)])
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d%s\n", name, f.labelString(values, "le", "+Inf"), cum, suffix); err != nil {
		return err
	}
	ls := f.labelString(values)
	_, err := fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n", name, ls, fmtFloat(sum), name, ls, total)
	return err
}

// writeHistSnapshot renders a callback-backed histogram (no exemplars).
func writeHistSnapshot(w io.Writer, name, labels string, s HistSnapshot) error {
	cum := uint64(0)
	for i, b := range s.Bounds {
		if i < len(s.Counts) {
			cum += s.Counts[i]
		}
		le := fmtFloat(b)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLe(labels, le), cum); err != nil {
			return err
		}
	}
	if len(s.Counts) > len(s.Bounds) {
		cum += s.Counts[len(s.Bounds)]
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLe(labels, "+Inf"), cum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n", name, labels, fmtFloat(s.Sum), name, labels, s.Count)
	return err
}

// mergeLe splices an le label into an existing (possibly empty) label set.
func mergeLe(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return strings.TrimSuffix(labels, "}") + `,le="` + le + `"}`
}

func (h *Histogram) snapshot() (bounds []float64, counts []uint64, inf uint64, sum float64, total uint64, exs []exemplar) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.bounds, append([]uint64(nil), h.counts...), h.inf, h.sum, h.total, append([]exemplar(nil), h.exemplars...)
}

// ---------------------------------------------------------------------------
// Snapshot API

// PointSnapshot is one data point of a family snapshot: the label pairs in
// exposition order and either a scalar value or a histogram state.
type PointSnapshot struct {
	Labels [][2]string
	Value  float64
	Hist   *HistSnapshot
}

// FamilySnapshot is one registered family's state read at snapshot time.
// Type is "counter", "gauge", or "histogram".
type FamilySnapshot struct {
	Name   string
	Help   string
	Type   string
	Points []PointSnapshot
}

// Snapshot reads every registered family into a plain-data form, the input
// shape for protocol exporters (OTLP) that cannot scrape the text format.
func (r *Registry) Snapshot() []FamilySnapshot {
	r.mu.Lock()
	ms := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()
	out := make([]FamilySnapshot, 0, len(ms))
	for _, m := range ms {
		fs := FamilySnapshot{Name: m.name, Help: m.help, Type: m.typ}
		switch {
		case m.counter != nil:
			fs.Points = []PointSnapshot{{Value: m.counter.Value()}}
		case m.gauge != nil:
			fs.Points = []PointSnapshot{{Value: m.gauge.fn()}}
		case m.vec != nil:
			for _, c := range m.vec.f.sorted() {
				fs.Points = append(fs.Points, PointSnapshot{Labels: pairLabels(m.vec.f.labels, c.values), Value: c.kid.Value()})
			}
		case m.gvec != nil:
			for _, c := range m.gvec.f.sorted() {
				fs.Points = append(fs.Points, PointSnapshot{Labels: pairLabels(m.gvec.f.labels, c.values), Value: c.kid.Value()})
			}
		case m.hist != nil:
			fs.Points = []PointSnapshot{{Hist: histSnapshotOf(m.hist)}}
		case m.hvec != nil:
			for _, c := range m.hvec.f.sorted() {
				fs.Points = append(fs.Points, PointSnapshot{Labels: pairLabels(m.hvec.f.labels, c.values), Hist: histSnapshotOf(c.kid)})
			}
		case m.histFn != nil:
			s := m.histFn()
			fs.Points = []PointSnapshot{{Hist: &s}}
		}
		out = append(out, fs)
	}
	return out
}

func pairLabels(names, values []string) [][2]string {
	out := make([][2]string, 0, len(names))
	for i := range names {
		out = append(out, [2]string{names[i], values[i]})
	}
	return out
}

func histSnapshotOf(h *Histogram) *HistSnapshot {
	bounds, counts, inf, sum, total, _ := h.snapshot()
	return &HistSnapshot{
		Bounds: append([]float64(nil), bounds...),
		Counts: append(counts, inf),
		Sum:    sum,
		Count:  total,
	}
}
