// Package cache provides the content-addressed solve cache behind chipletd:
// a bounded LRU of computed results keyed by a canonical hash of the
// request, with singleflight-style deduplication so concurrent identical
// requests share one computation instead of racing N copies of the same
// multi-second thermal solve.
//
// Cancellation is reference-counted: every waiter on an in-flight
// computation registers its context, and the computation's own context is
// canceled only once every waiter has gone away. One impatient client
// therefore cannot kill a solve that other clients still want, while a
// computation nobody is waiting for stops burning CPU.
package cache

import (
	"container/list"
	"context"
	"sync"

	"chiplet25d/internal/obs"
)

// Stats is a snapshot of the cache counters.
type Stats struct {
	Hits      int64 // lookups answered from the LRU
	Misses    int64 // lookups that started a computation
	Shared    int64 // lookups that joined an in-flight computation
	Evictions int64 // entries dropped by the LRU bound
	Len       int   // current entry count
}

// entry is one cached value in the LRU.
type entry struct {
	key string
	val any
}

// call is one in-flight computation with its waiter refcount.
type call struct {
	done    chan struct{} // closed when the computation finishes
	val     any
	err     error
	waiters int
	cancel  context.CancelFunc // cancels the computation's context
}

// Cache is a bounded LRU with singleflight deduplication. The zero value is
// not usable; construct with New.
type Cache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List               // front = most recently used
	entries  map[string]*list.Element // key -> *entry element
	inflight map[string]*call

	hits, misses, shared, evictions int64
}

// New returns a cache bounded to capacity entries (capacity < 1 is treated
// as 1: the singleflight layer needs somewhere to publish results).
func New(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		entries:  make(map[string]*list.Element),
		inflight: make(map[string]*call),
	}
}

// Get returns the cached value for key, marking it most recently used.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*entry).val, true
	}
	c.misses++
	return nil, false
}

// put inserts (or refreshes) a value, evicting the least recently used
// entry beyond capacity. Caller holds c.mu.
func (c *Cache) put(key string, val any) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*entry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&entry{key: key, val: val})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*entry).key)
		c.evictions++
	}
}

// Put inserts a value directly (used by warm-up paths and tests).
func (c *Cache) Put(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.put(key, val)
}

// Do returns the value for key, computing it at most once across all
// concurrent callers. On a cache hit the value returns immediately with
// hit = true. Otherwise the first caller runs fn with a context that stays
// alive while at least one caller is still waiting; later identical calls
// block on the same computation. A caller whose own ctx expires unblocks
// with ctx's error and drops its reference; when the last reference is
// dropped the computation's context is canceled. Successful results enter
// the LRU; errors are not cached.
func (c *Cache) Do(ctx context.Context, key string, fn func(ctx context.Context) (any, error)) (val any, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		v := el.Value.(*entry).val
		c.mu.Unlock()
		return v, true, nil
	}
	if cl, ok := c.inflight[key]; ok {
		cl.waiters++
		c.shared++
		c.mu.Unlock()
		return c.wait(ctx, key, cl)
	}
	c.misses++
	// The computation's lifetime is bound to its waiters, not to the first
	// caller's request: context.WithCancel from Background plus explicit
	// refcounting implements that.
	runCtx, cancel := context.WithCancel(context.Background())
	cl := &call{done: make(chan struct{}), waiters: 1, cancel: cancel}
	c.inflight[key] = cl
	c.mu.Unlock()

	go func() {
		v, e := fn(runCtx)
		c.mu.Lock()
		cl.val, cl.err = v, e
		if e == nil {
			c.put(key, v)
		}
		delete(c.inflight, key)
		c.mu.Unlock()
		cancel() // release the context's resources
		close(cl.done)
	}()
	return c.wait(ctx, key, cl)
}

// wait blocks until the call completes or ctx is done, maintaining the
// waiter refcount.
func (c *Cache) wait(ctx context.Context, key string, cl *call) (any, bool, error) {
	select {
	case <-cl.done:
		return cl.val, false, cl.err
	case <-ctx.Done():
		c.mu.Lock()
		cl.waiters--
		abandon := cl.waiters == 0
		c.mu.Unlock()
		if abandon {
			cl.cancel()
		}
		// The request-scoped logger already carries the request ID.
		obs.Logger(ctx).Info("cache: waiter gave up on in-flight computation",
			"key", key, "computation_canceled", abandon)
		return nil, false, ctx.Err()
	}
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Shared:    c.shared,
		Evictions: c.evictions,
		Len:       c.ll.Len(),
	}
}

// Len returns the current entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Keys returns the keys from most to least recently used (test helper for
// asserting eviction order).
func (c *Cache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		keys = append(keys, el.Value.(*entry).key)
	}
	return keys
}
