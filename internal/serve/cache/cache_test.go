package cache

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestLRUEvictionOrder pins the eviction policy: least recently *used* (not
// least recently inserted) leaves first, and Get refreshes recency.
func TestLRUEvictionOrder(t *testing.T) {
	c := New(3)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3)
	if _, ok := c.Get("a"); !ok { // refresh a: LRU order is now b, c, a
		t.Fatal("a missing")
	}
	c.Put("d", 4) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s should have survived", k)
		}
	}
	c.Put("e", 5) // evicts a: the survivor loop above touched a, then c, then d
	if got, want := c.Keys(), []string{"e", "d", "c"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("recency order = %v, want %v", got, want)
	}
	if st := c.Stats(); st.Evictions != 2 || st.Len != 3 {
		t.Fatalf("stats = %+v, want 2 evictions, len 3", st)
	}
}

// TestSingleflightDedup runs many concurrent identical requests and checks
// exactly one computation happened.
func TestSingleflightDedup(t *testing.T) {
	c := New(8)
	var calls int32
	release := make(chan struct{})
	fn := func(ctx context.Context) (any, error) {
		atomic.AddInt32(&calls, 1)
		<-release
		return "result", nil
	}
	const n = 16
	var wg sync.WaitGroup
	errs := make([]error, n)
	vals := make([]any, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i], _, errs[i] = c.Do(context.Background(), "k", fn)
		}(i)
	}
	// Let every goroutine either start the call or join it, then release.
	for c.Stats().Shared < n-1 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if got := atomic.LoadInt32(&calls); got != 1 {
		t.Fatalf("computation ran %d times, want 1", got)
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil || vals[i] != "result" {
			t.Fatalf("caller %d: val=%v err=%v", i, vals[i], errs[i])
		}
	}
	// The published value is now a plain cache hit.
	if _, hit, _ := c.Do(context.Background(), "k", fn); !hit {
		t.Fatal("expected a cache hit after the shared computation")
	}
}

// TestErrorsNotCached verifies a failed computation leaves no entry behind.
func TestErrorsNotCached(t *testing.T) {
	c := New(8)
	boom := errors.New("boom")
	n := 0
	fn := func(ctx context.Context) (any, error) {
		n++
		if n == 1 {
			return nil, boom
		}
		return 42, nil
	}
	if _, _, err := c.Do(context.Background(), "k", fn); !errors.Is(err, boom) {
		t.Fatalf("first call: %v, want boom", err)
	}
	v, hit, err := c.Do(context.Background(), "k", fn)
	if err != nil || hit || v != 42 {
		t.Fatalf("retry after error: v=%v hit=%v err=%v", v, hit, err)
	}
}

// TestWaiterTimeoutDoesNotKillSharedCall: an impatient waiter must unblock
// with its own context error while the computation continues for the
// patient one.
func TestWaiterTimeoutDoesNotKillSharedCall(t *testing.T) {
	c := New(8)
	release := make(chan struct{})
	var sawCancel atomic.Bool
	fn := func(ctx context.Context) (any, error) {
		<-release
		if ctx.Err() != nil {
			sawCancel.Store(true)
			return nil, ctx.Err()
		}
		return "ok", nil
	}
	patient := make(chan error, 1)
	go func() {
		_, _, err := c.Do(context.Background(), "k", fn)
		patient <- err
	}()
	for c.Stats().Misses == 0 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, _, err := c.Do(ctx, "k", fn); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("impatient waiter: %v, want deadline exceeded", err)
	}
	close(release)
	if err := <-patient; err != nil {
		t.Fatalf("patient waiter: %v", err)
	}
	if sawCancel.Load() {
		t.Fatal("computation was canceled while a waiter remained")
	}
}

// TestAbandonedCallCanceled: when every waiter gives up, the computation's
// context must be canceled.
func TestAbandonedCallCanceled(t *testing.T) {
	c := New(8)
	canceled := make(chan struct{})
	fn := func(ctx context.Context) (any, error) {
		<-ctx.Done()
		close(canceled)
		return nil, ctx.Err()
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if _, _, err := c.Do(ctx, "k", fn); !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoning waiter: %v, want context.Canceled", err)
	}
	select {
	case <-canceled:
	case <-time.After(2 * time.Second):
		t.Fatal("computation context was never canceled after the last waiter left")
	}
}

// TestDoDistinctKeys sanity-checks that distinct keys compute independently.
func TestDoDistinctKeys(t *testing.T) {
	c := New(8)
	var calls int32
	for i := 0; i < 4; i++ {
		key := fmt.Sprintf("k%d", i)
		v, hit, err := c.Do(context.Background(), key, func(ctx context.Context) (any, error) {
			atomic.AddInt32(&calls, 1)
			return key, nil
		})
		if err != nil || hit || v != key {
			t.Fatalf("key %s: v=%v hit=%v err=%v", key, v, hit, err)
		}
	}
	if calls != 4 {
		t.Fatalf("calls = %d, want 4", calls)
	}
}
