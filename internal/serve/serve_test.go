package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// testServer returns a server tuned for fast tests: tiny thermal grids, a
// small pool, and a generous deadline unless overridden.
func testServer(t *testing.T, mutate func(*Options)) *Server {
	t.Helper()
	opts := DefaultOptions()
	opts.Workers = 4
	opts.QueueDepth = 16
	opts.CacheCapacity = 32
	opts.RequestTimeout = 60 * time.Second
	// Keep test output clean; individual tests can install their own logger.
	opts.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	if mutate != nil {
		mutate(&opts)
	}
	return New(opts)
}

func postJSON(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// solveBody is a small-grid solve request (8x8 grid: fast, still exercises
// the full leakage-coupled pipeline).
const solveBody = `{
  "placement": {"chiplets": 4, "s3_mm": 1},
  "benchmark": "cholesky",
  "freq_mhz": 533,
  "cores": 128,
  "grid_n": 8
}`

func TestSolveEndpoint(t *testing.T) {
	s := testServer(t, nil)
	rec := postJSON(t, s.Handler(), "/v1/thermal/solve", solveBody)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body = %s", rec.Code, rec.Body)
	}
	var resp SolveResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.PeakC <= 45 || resp.PeakC > 200 {
		t.Errorf("peak_c = %g, want a physical value above ambient", resp.PeakC)
	}
	if resp.TotalPowerW <= 0 || resp.MeshPowerW <= 0 {
		t.Errorf("powers = (%g, %g), want positive", resp.TotalPowerW, resp.MeshPowerW)
	}
	if resp.CGIterations <= 0 {
		t.Errorf("cg_iterations = %d, want > 0", resp.CGIterations)
	}
	if resp.Cached {
		t.Error("first solve reported cached = true")
	}
	if !strings.HasPrefix(resp.CacheKey, "solve:") {
		t.Errorf("cache_key = %q, want solve: prefix", resp.CacheKey)
	}
}

// metricValue extracts one sample value from a Prometheus exposition.
func metricValue(t *testing.T, expo, sample string) float64 {
	t.Helper()
	re := regexp.MustCompile("(?m)^" + regexp.QuoteMeta(sample) + " ([0-9.e+-]+)$")
	m := re.FindStringSubmatch(expo)
	if m == nil {
		return 0
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("parse %s value %q: %v", sample, m[1], err)
	}
	return v
}

func scrape(t *testing.T, h http.Handler) string {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("metrics Content-Type = %q", ct)
	}
	return rec.Body.String()
}

// TestSolveCacheHit is the acceptance test: a repeated identical request is
// answered from the cache, observable both in the response body and in the
// /metrics counters.
func TestSolveCacheHit(t *testing.T) {
	s := testServer(t, nil)
	h := s.Handler()

	rec1 := postJSON(t, h, "/v1/thermal/solve", solveBody)
	if rec1.Code != http.StatusOK {
		t.Fatalf("first solve = %d, body = %s", rec1.Code, rec1.Body)
	}
	rec2 := postJSON(t, h, "/v1/thermal/solve", solveBody)
	if rec2.Code != http.StatusOK {
		t.Fatalf("second solve = %d, body = %s", rec2.Code, rec2.Body)
	}
	var r1, r2 SolveResponse
	if err := json.Unmarshal(rec1.Body.Bytes(), &r1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(rec2.Body.Bytes(), &r2); err != nil {
		t.Fatal(err)
	}
	if r1.Cached || !r2.Cached {
		t.Errorf("cached flags = (%v, %v), want (false, true)", r1.Cached, r2.Cached)
	}
	if r1.CacheKey != r2.CacheKey {
		t.Errorf("cache keys differ: %q vs %q", r1.CacheKey, r2.CacheKey)
	}
	if r1.PeakC != r2.PeakC {
		t.Errorf("cached peak %g != computed peak %g", r2.PeakC, r1.PeakC)
	}

	expo := scrape(t, h)
	if v := metricValue(t, expo, `chipletd_cache_hits_total{endpoint="thermal_solve"}`); v != 1 {
		t.Errorf("cache hits = %v, want 1\n%s", v, expo)
	}
	if v := metricValue(t, expo, `chipletd_cache_misses_total{endpoint="thermal_solve"}`); v != 1 {
		t.Errorf("cache misses = %v, want 1", v)
	}
	if v := metricValue(t, expo, `chipletd_thermal_sims_total`); v != 1 {
		t.Errorf("thermal sims = %v, want 1 (the hit must not re-simulate)", v)
	}
	if v := metricValue(t, expo, `chipletd_requests_total{endpoint="thermal_solve",code="200"}`); v != 2 {
		t.Errorf("requests = %v, want 2", v)
	}
	if v := metricValue(t, expo, `chipletd_cg_iterations_total`); v <= 0 {
		t.Errorf("cg iterations = %v, want > 0", v)
	}
}

// TestSolveKeyNormalization: field order and formatting must not change the
// content address, while a real parameter change must.
func TestSolveKeyNormalization(t *testing.T) {
	s := testServer(t, nil)
	h := s.Handler()
	reordered := `{"grid_n": 8, "cores": 128, "freq_mhz": 533.0, "benchmark": "cholesky",
	               "placement": {"s3_mm": 1.0, "chiplets": 4}}`
	changed := `{"grid_n": 8, "cores": 96, "freq_mhz": 533, "benchmark": "cholesky",
	             "placement": {"chiplets": 4, "s3_mm": 1}}`

	var base, same, diff SolveResponse
	for body, dst := range map[string]*SolveResponse{solveBody: &base, reordered: &same, changed: &diff} {
		rec := postJSON(t, h, "/v1/thermal/solve", body)
		if rec.Code != http.StatusOK {
			t.Fatalf("solve = %d, body = %s", rec.Code, rec.Body)
		}
		if err := json.Unmarshal(rec.Body.Bytes(), dst); err != nil {
			t.Fatal(err)
		}
	}
	if base.CacheKey != same.CacheKey {
		t.Errorf("reordered request got a different key: %q vs %q", same.CacheKey, base.CacheKey)
	}
	if base.CacheKey == diff.CacheKey {
		t.Error("different cores count got the same cache key")
	}
}

// TestConcurrentSolves hammers one key and several distinct keys in
// parallel (run with -race); the identical requests must collapse to few
// simulations via singleflight + cache.
func TestConcurrentSolves(t *testing.T) {
	s := testServer(t, nil)
	h := s.Handler()
	var wg sync.WaitGroup
	errs := make(chan string, 32)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := solveBody
			if i%2 == 1 { // half the goroutines use a distinct-cores variant
				body = strings.Replace(solveBody, `"cores": 128`, fmt.Sprintf(`"cores": %d`, 32+32*i), 1)
			}
			rec := postJSON(t, h, "/v1/thermal/solve", body)
			if rec.Code != http.StatusOK {
				errs <- fmt.Sprintf("goroutine %d: status %d body %s", i, rec.Code, rec.Body)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	expo := scrape(t, h)
	sims := metricValue(t, expo, "chipletd_thermal_sims_total")
	// 5 distinct keys (cores 128 plus four odd variants); dedup must keep
	// simulations at the distinct-key count.
	if sims > 5 {
		t.Errorf("thermal sims = %v, want <= 5 with singleflight dedup", sims)
	}
}

func TestSolveMalformedJSON(t *testing.T) {
	s := testServer(t, nil)
	h := s.Handler()
	for name, body := range map[string]string{
		"syntax":        `{"placement": `,
		"unknown_field": `{"bogus": 1}`,
		"trailing":      solveBody + `{"again": true}`,
		"bad_benchmark": `{"placement": {"chiplets": 1}, "benchmark": "nope", "freq_mhz": 533, "cores": 128, "grid_n": 8}`,
		"bad_freq":      `{"placement": {"chiplets": 1}, "benchmark": "cholesky", "freq_mhz": 123, "cores": 128, "grid_n": 8}`,
		"bad_cores":     `{"placement": {"chiplets": 1}, "benchmark": "cholesky", "freq_mhz": 533, "cores": 1000, "grid_n": 8}`,
		"bad_grid":      `{"placement": {"chiplets": 1}, "benchmark": "cholesky", "freq_mhz": 533, "cores": 128, "grid_n": 7}`,
		"huge_grid":     `{"placement": {"chiplets": 1}, "benchmark": "cholesky", "freq_mhz": 533, "cores": 128, "grid_n": 4096}`,
		"bad_chiplets":  `{"placement": {"chiplets": 3, "spacing_mm": 1}, "benchmark": "cholesky", "freq_mhz": 533, "cores": 128, "grid_n": 8}`,
	} {
		rec := postJSON(t, h, "/v1/thermal/solve", body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (body %s)", name, rec.Code, rec.Body)
		}
		var er errorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error == "" {
			t.Errorf("%s: error envelope missing in %s", name, rec.Body)
		}
	}
	expo := scrape(t, h)
	if v := metricValue(t, expo, `chipletd_requests_total{endpoint="thermal_solve",code="400"}`); v != 9 {
		t.Errorf("400 count = %v, want 9", v)
	}
}

// TestSolveDeadline forces an unmeetable deadline and expects 504.
func TestSolveDeadline(t *testing.T) {
	s := testServer(t, func(o *Options) { o.RequestTimeout = time.Millisecond })
	// grid_n 64 takes far longer than 1 ms.
	body := strings.Replace(solveBody, `"grid_n": 8`, `"grid_n": 64`, 1)
	rec := postJSON(t, s.Handler(), "/v1/thermal/solve", body)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %s)", rec.Code, rec.Body)
	}
	expo := scrape(t, s.Handler())
	if v := metricValue(t, expo, `chipletd_requests_total{endpoint="thermal_solve",code="504"}`); v != 1 {
		t.Errorf("504 count = %v, want 1", v)
	}
}

// searchBody is a deliberately tiny search: one chiplet count, one
// interposer edge, coarse grid, surrogate margin -1 forces the cheap path.
const searchBody = `{
  "benchmark": "swaptions",
  "threshold_c": 85,
  "chiplet_counts": [4],
  "interposer_min_mm": 30,
  "interposer_max_mm": 30,
  "starts": 1,
  "thermal_grid_n": 8,
  "surrogate_margin_c": -1
}`

func TestSearchEndpoint(t *testing.T) {
	s := testServer(t, nil)
	h := s.Handler()
	rec := postJSON(t, h, "/v1/org/search", searchBody)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body = %s", rec.Code, rec.Body)
	}
	var resp SearchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Feasible || resp.Best == nil {
		t.Fatalf("search infeasible: %s", rec.Body)
	}
	if resp.Best.Chiplets != 4 {
		t.Errorf("best chiplets = %d, want 4", resp.Best.Chiplets)
	}
	if resp.Best.PeakC <= 45 {
		t.Errorf("best peak = %g, want above ambient", resp.Best.PeakC)
	}
	if resp.ThermalSims <= 0 || resp.CGIterations <= 0 {
		t.Errorf("observability: sims=%d cg=%d, want > 0", resp.ThermalSims, resp.CGIterations)
	}

	// Identical search again: must be a cache hit without new simulations.
	simsBefore := metricValue(t, scrape(t, h), "chipletd_thermal_sims_total")
	rec2 := postJSON(t, h, "/v1/org/search", searchBody)
	if rec2.Code != http.StatusOK {
		t.Fatalf("second search = %d", rec2.Code)
	}
	var resp2 SearchResponse
	if err := json.Unmarshal(rec2.Body.Bytes(), &resp2); err != nil {
		t.Fatal(err)
	}
	if !resp2.Cached {
		t.Error("second identical search was not a cache hit")
	}
	expo := scrape(t, h)
	if v := metricValue(t, expo, `chipletd_cache_hits_total{endpoint="org_search"}`); v != 1 {
		t.Errorf("search cache hits = %v, want 1", v)
	}
	if v := metricValue(t, expo, "chipletd_thermal_sims_total"); v != simsBefore {
		t.Errorf("cache hit ran %v new sims", v-simsBefore)
	}
}

func TestSearchBadRequest(t *testing.T) {
	s := testServer(t, nil)
	for name, body := range map[string]string{
		"no_benchmark": `{"threshold_c": 85}`,
		"unknown":      `{"benchmark": "swaptions", "wat": 1}`,
		"huge_grid":    `{"benchmark": "swaptions", "thermal_grid_n": 4096}`,
	} {
		rec := postJSON(t, s.Handler(), "/v1/org/search", body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (body %s)", name, rec.Code, rec.Body)
		}
	}
}

// TestSearchDeadline cancels a search mid-flight via the request deadline.
func TestSearchDeadline(t *testing.T) {
	s := testServer(t, func(o *Options) { o.RequestTimeout = 5 * time.Millisecond })
	// A full-size search (64 grid, both counts) cannot finish in 5 ms.
	rec := postJSON(t, s.Handler(), "/v1/org/search", `{"benchmark": "swaptions"}`)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %s)", rec.Code, rec.Body)
	}
}

func TestCostEndpoint(t *testing.T) {
	s := testServer(t, nil)
	h := s.Handler()
	rec := postJSON(t, h, "/v1/cost", `{"chiplets": 16, "interposer_mm": 40}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body = %s", rec.Code, rec.Body)
	}
	var resp CostResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.CostUSD <= 0 || resp.SingleChipUSD <= 0 {
		t.Fatalf("non-positive costs: %+v", resp)
	}
	if resp.NormCost != resp.CostUSD/resp.SingleChipUSD {
		t.Errorf("norm_cost inconsistent: %+v", resp)
	}
	// Smaller dies yield better (Eq. (2)): 16 chiplets beat the monolithic die.
	if resp.ChipletYield <= resp.SingleChipYield {
		t.Errorf("chiplet yield %g should exceed single-chip yield %g",
			resp.ChipletYield, resp.SingleChipYield)
	}

	rec = postJSON(t, h, "/v1/cost", `{"chiplets": 1}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("2D cost status = %d", rec.Code)
	}
	var base CostResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &base); err != nil {
		t.Fatal(err)
	}
	if base.NormCost != 1 || base.CostUSD != base.SingleChipUSD {
		t.Errorf("2D baseline not normalized: %+v", base)
	}

	for name, body := range map[string]string{
		"bad_count":      `{"chiplets": 9, "interposer_mm": 40}`,
		"tiny_edge":      `{"chiplets": 4, "interposer_mm": 1}`,
		"huge_edge":      `{"chiplets": 4, "interposer_mm": 99}`,
		"bad_params":     `{"chiplets": 4, "interposer_mm": 40, "d0_per_cm2": -1}`,
		"malformed_json": `{`,
	} {
		rec := postJSON(t, h, "/v1/cost", body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (body %s)", name, rec.Code, rec.Body)
		}
	}
}

func TestHealthz(t *testing.T) {
	s := testServer(t, nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d", rec.Code)
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body["status"] != "ok" {
		t.Fatalf("healthz body = %s", rec.Body)
	}
	// Build info + uptime ride along for fleet debugging.
	for _, k := range []string{"version", "revision", "go_version", "uptime_seconds"} {
		if _, ok := body[k]; !ok {
			t.Errorf("healthz body missing %q: %s", k, rec.Body)
		}
	}
	if up, ok := body["uptime_seconds"].(float64); !ok || up < 0 {
		t.Errorf("healthz uptime_seconds = %v", body["uptime_seconds"])
	}
}

// TestQueueFull floods a 1-worker/1-slot server with slow searches and
// expects load shedding with 503 for the overflow.
func TestQueueFull(t *testing.T) {
	s := testServer(t, func(o *Options) {
		o.Workers = 1
		o.QueueDepth = 1
		o.RequestTimeout = 10 * time.Second
	})
	h := s.Handler()
	var wg sync.WaitGroup
	codes := make(chan int, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct keys so singleflight cannot merge them; grid 32 keeps
			// each solve slow enough that the flood outpaces the one worker.
			body := strings.Replace(solveBody, `"cores": 128`, fmt.Sprintf(`"cores": %d`, 32*(i%8)+32), 1)
			body = strings.Replace(body, `"grid_n": 8`, `"grid_n": 32`, 1)
			rec := postJSON(t, h, "/v1/thermal/solve", body)
			codes <- rec.Code
		}(i)
	}
	wg.Wait()
	close(codes)
	var ok, shed int
	for c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusServiceUnavailable:
			shed++
		default:
			t.Errorf("unexpected status %d", c)
		}
	}
	if ok == 0 {
		t.Error("no request succeeded")
	}
	if shed == 0 {
		t.Error("no request was shed with 503 despite queue depth 1")
	}
}

// TestMethodNotAllowed guards the method-qualified routes.
func TestMethodNotAllowed(t *testing.T) {
	s := testServer(t, nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/thermal/solve", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET on solve = %d, want 405", rec.Code)
	}
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/metrics", bytes.NewReader(nil)))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST on metrics = %d, want 405", rec.Code)
	}
}
