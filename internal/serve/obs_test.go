package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"chiplet25d/internal/obs"
)

// collectSpans flattens a span tree into name -> first matching span.
func collectSpans(tr *obs.TraceJSON) map[string]*obs.SpanJSON {
	m := make(map[string]*obs.SpanJSON)
	tr.Walk(func(sp *obs.SpanJSON) {
		if _, ok := m[sp.Name]; !ok {
			m[sp.Name] = sp
		}
	})
	return m
}

// TestSolveTraceInline is the observability acceptance test: ?trace=1
// returns the span tree inline, with cache, queue-wait, floorplan, thermal
// CG (carrying an iteration count), and leakage-loop spans all present.
func TestSolveTraceInline(t *testing.T) {
	s := testServer(t, nil)
	rec := postJSON(t, s.Handler(), "/v1/thermal/solve?trace=1", solveBody)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body = %s", rec.Code, rec.Body)
	}
	if rec.Header().Get("X-Request-Id") == "" {
		t.Error("response missing X-Request-Id")
	}
	var resp SolveResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Trace == nil {
		t.Fatal("?trace=1 response has no trace")
	}
	if resp.Trace.RequestID != rec.Header().Get("X-Request-Id") {
		t.Errorf("trace request_id %q != header %q", resp.Trace.RequestID, rec.Header().Get("X-Request-Id"))
	}
	if resp.Trace.Route != "thermal_solve" {
		t.Errorf("trace route = %q", resp.Trace.Route)
	}
	if resp.Trace.Attrs["cache"] != "miss" {
		t.Errorf("trace cache attr = %v, want miss", resp.Trace.Attrs["cache"])
	}
	spans := collectSpans(resp.Trace)
	for _, name := range []string{
		"cache.lookup", "pool.queue_wait", "floorplan.build",
		"thermal.model", "power.leakage_loop", "thermal.cg",
	} {
		if spans[name] == nil {
			t.Errorf("trace missing span %q; have %v", name, spanNames(spans))
		}
	}
	if sp := spans["thermal.cg"]; sp != nil {
		if it, ok := sp.Attrs["iterations"].(float64); !ok || it < 1 {
			t.Errorf("thermal.cg iterations attr = %v, want >= 1", sp.Attrs["iterations"])
		}
	}
	if sp := spans["power.leakage_loop"]; sp != nil {
		if it, ok := sp.Attrs["iterations"].(float64); !ok || it < 1 {
			t.Errorf("leakage_loop iterations attr = %v, want >= 1", sp.Attrs["iterations"])
		}
	}
	if sp := spans["cache.lookup"]; sp != nil && sp.Attrs["hit"] != false {
		t.Errorf("cache.lookup hit attr = %v, want false", sp.Attrs["hit"])
	}

	// A second identical request is a cache hit: no solve spans, hit=true.
	rec2 := postJSON(t, s.Handler(), "/v1/thermal/solve?trace=1", solveBody)
	var resp2 SolveResponse
	if err := json.Unmarshal(rec2.Body.Bytes(), &resp2); err != nil {
		t.Fatal(err)
	}
	if resp2.Trace == nil {
		t.Fatal("cache-hit trace missing")
	}
	spans2 := collectSpans(resp2.Trace)
	if sp := spans2["cache.lookup"]; sp == nil || sp.Attrs["hit"] != true {
		t.Errorf("cache-hit trace: cache.lookup = %+v", sp)
	}
	if spans2["thermal.cg"] != nil {
		t.Error("cache-hit trace contains a thermal.cg span")
	}

	// Without ?trace=1 the response stays lean.
	rec3 := postJSON(t, s.Handler(), "/v1/thermal/solve", solveBody)
	var resp3 SolveResponse
	if err := json.Unmarshal(rec3.Body.Bytes(), &resp3); err != nil {
		t.Fatal(err)
	}
	if resp3.Trace != nil {
		t.Error("untraced request returned a trace")
	}
}

func spanNames(m map[string]*obs.SpanJSON) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestDebugSolves verifies the flight recorder retains completed request
// traces and serves them newest-first at GET /debug/solves.
func TestDebugSolves(t *testing.T) {
	s := testServer(t, nil)
	rec := postJSON(t, s.Handler(), "/v1/thermal/solve", solveBody)
	if rec.Code != http.StatusOK {
		t.Fatalf("solve = %d", rec.Code)
	}
	id := rec.Header().Get("X-Request-Id")

	drec := httptest.NewRecorder()
	s.Handler().ServeHTTP(drec, httptest.NewRequest(http.MethodGet, "/debug/solves", nil))
	if drec.Code != http.StatusOK {
		t.Fatalf("/debug/solves = %d", drec.Code)
	}
	var out debugSolvesResponse
	if err := json.Unmarshal(drec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Recent) == 0 {
		t.Fatal("/debug/solves recent is empty after a solve")
	}
	tr := out.Recent[0]
	if tr.RequestID != id {
		t.Errorf("newest recorded trace id = %q, want %q", tr.RequestID, id)
	}
	if tr.InProgress {
		t.Error("recorded trace still marked in progress")
	}
	if spans := collectSpans(tr); spans["thermal.cg"] == nil {
		t.Errorf("recorded trace missing thermal.cg span; have %v", spanNames(spans))
	}
}

// TestRequestIDPropagation covers inbound X-Request-Id honoring and the
// request_id field in error bodies (here a 503 from a full queue).
func TestRequestIDPropagation(t *testing.T) {
	s := testServer(t, func(o *Options) {
		o.Workers = 1
		o.QueueDepth = 1
	})
	h := s.Handler()

	// Inbound ID is echoed back and used for the trace.
	req := httptest.NewRequest(http.MethodPost, "/v1/thermal/solve?trace=1", strings.NewReader(solveBody))
	req.Header.Set("X-Request-Id", "cafe0123deadbeef")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get("X-Request-Id"); got != "cafe0123deadbeef" {
		t.Errorf("inbound request id not echoed: got %q", got)
	}
	var resp SolveResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Trace == nil || resp.Trace.RequestID != "cafe0123deadbeef" {
		t.Errorf("trace did not carry the inbound request id: %+v", resp.Trace)
	}

	// Errors carry the request id in the JSON body. A malformed request is
	// the simplest deterministic failure.
	brec := postJSON(t, h, "/v1/thermal/solve", `{"benchmark": 42}`)
	if brec.Code != http.StatusBadRequest {
		t.Fatalf("malformed solve = %d", brec.Code)
	}
	var e errorResponse
	if err := json.Unmarshal(brec.Body.Bytes(), &e); err != nil {
		t.Fatal(err)
	}
	if e.RequestID == "" || e.RequestID != brec.Header().Get("X-Request-Id") {
		t.Errorf("error body request_id = %q, header = %q", e.RequestID, brec.Header().Get("X-Request-Id"))
	}
}

// TestTraceRingEviction runs more solves than the ring holds and expects
// only the newest to survive, newest first.
func TestTraceRingEviction(t *testing.T) {
	s := testServer(t, func(o *Options) { o.TraceRingSize = 2 })
	h := s.Handler()
	ids := make([]string, 3)
	bodies := []string{
		strings.Replace(solveBody, `"cores": 128`, `"cores": 64`, 1),
		strings.Replace(solveBody, `"cores": 128`, `"cores": 96`, 1),
		solveBody,
	}
	for i, b := range bodies {
		rec := postJSON(t, h, "/v1/thermal/solve", b)
		if rec.Code != http.StatusOK {
			t.Fatalf("solve %d = %d", i, rec.Code)
		}
		ids[i] = rec.Header().Get("X-Request-Id")
	}
	drec := httptest.NewRecorder()
	h.ServeHTTP(drec, httptest.NewRequest(http.MethodGet, "/debug/solves", nil))
	var out debugSolvesResponse
	if err := json.Unmarshal(drec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Recent) != 2 {
		t.Fatalf("recent holds %d traces, want 2", len(out.Recent))
	}
	if out.Recent[0].RequestID != ids[2] || out.Recent[1].RequestID != ids[1] {
		t.Errorf("ring order = [%s %s], want [%s %s]",
			out.Recent[0].RequestID, out.Recent[1].RequestID, ids[2], ids[1])
	}
}

// TestObservabilityMetrics checks the new metric families appear in the
// exposition after a solve: iteration histograms, per-stage durations,
// in-flight gauge, and build info.
func TestObservabilityMetrics(t *testing.T) {
	s := testServer(t, nil)
	h := s.Handler()
	if rec := postJSON(t, h, "/v1/thermal/solve", solveBody); rec.Code != http.StatusOK {
		t.Fatalf("solve = %d", rec.Code)
	}
	expo := scrape(t, h)
	for _, want := range []string{
		"chipletd_cg_iterations_bucket",
		`chipletd_cg_iterations_count{precond="ic0"} 1`,
		"chipletd_leakage_iterations_count 1",
		`chipletd_stage_duration_seconds_count{stage="thermal.cg"}`,
		`chipletd_stage_duration_seconds_count{stage="cache.lookup"}`,
		`chipletd_inflight_requests{route="thermal_solve"} 0`,
		"chipletd_build_info{",
	} {
		if !strings.Contains(expo, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestPprofGating verifies /debug/pprof/ is 404 by default and served when
// enabled.
func TestPprofGating(t *testing.T) {
	off := testServer(t, nil)
	rec := httptest.NewRecorder()
	off.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("pprof disabled: got %d, want 404", rec.Code)
	}
	on := testServer(t, func(o *Options) { o.EnablePprof = true })
	rec = httptest.NewRecorder()
	on.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("pprof enabled: got %d, want 200", rec.Code)
	}
}

// TestSlowTraceRetention drops the slow threshold to zero-ish so every
// request also lands in the slow ring.
func TestSlowTraceRetention(t *testing.T) {
	s := testServer(t, func(o *Options) { o.SlowTraceThreshold = time.Nanosecond })
	h := s.Handler()
	if rec := postJSON(t, h, "/v1/thermal/solve", solveBody); rec.Code != http.StatusOK {
		t.Fatalf("solve = %d", rec.Code)
	}
	drec := httptest.NewRecorder()
	h.ServeHTTP(drec, httptest.NewRequest(http.MethodGet, "/debug/solves", nil))
	var out debugSolvesResponse
	if err := json.Unmarshal(drec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Slow) == 0 {
		t.Error("slow ring empty despite nanosecond threshold")
	}
	if out.SlowThresholdMS <= 0 {
		t.Errorf("slow_threshold_ms = %g, want > 0", out.SlowThresholdMS)
	}
}
