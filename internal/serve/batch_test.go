package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"chiplet25d/internal/config"
)

func sweepBase() *SolveRequest {
	sp := 1.0
	return &SolveRequest{
		Placement: PlacementSpec{Chiplets: 4, SpacingMM: &sp},
		Benchmark: "cholesky", FreqMHz: 533, Cores: 128, GridN: 8,
	}
}

func TestSweepExpandSolve(t *testing.T) {
	tmpl := SweepTemplate{
		Solve:      sweepBase(),
		Benchmarks: []string{"cholesky", "lu.cont"},
		SpacingMM:  []float64{1, 2},
		FreqMHz:    []float64{533, 800},
		Cores:      []int{128, 256},
	}
	items, err := tmpl.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 16 {
		t.Fatalf("expanded %d items, want 2*2*2*2 = 16", len(items))
	}
	first, last := items[0].Solve, items[15].Solve
	if first.Benchmark != "cholesky" || *first.Placement.SpacingMM != 1 ||
		first.FreqMHz != 533 || first.Cores != 128 {
		t.Errorf("first item = %+v, want the all-first-axis-values corner", first)
	}
	if last.Benchmark != "lu.cont" || *last.Placement.SpacingMM != 2 ||
		last.FreqMHz != 800 || last.Cores != 256 {
		t.Errorf("last item = %+v, want the all-last-axis-values corner", last)
	}
	// Items must not alias each other's fields (or the template's).
	if items[0].Solve == items[1].Solve || items[0].Solve.Placement.SpacingMM == items[4].Solve.Placement.SpacingMM {
		t.Error("expanded items alias each other")
	}
	if tmpl.Solve.Benchmark != "cholesky" || *tmpl.Solve.Placement.SpacingMM != 1 {
		t.Errorf("expansion mutated the template base: %+v", tmpl.Solve)
	}
}

func TestSweepExpandSearch(t *testing.T) {
	tmpl := SweepTemplate{
		Search: &SearchRequest{File: config.File{Benchmark: "swaptions"}},
		Alphas: []float64{0.3, 0.5},
		Betas:  []float64{0.5, 0.7},
	}
	items, err := tmpl.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 4 {
		t.Fatalf("expanded %d items, want 4", len(items))
	}
	if *items[0].Search.Alpha != 0.3 || *items[0].Search.Beta != 0.5 ||
		*items[3].Search.Alpha != 0.5 || *items[3].Search.Beta != 0.7 {
		t.Errorf("axis values misapplied: %+v / %+v", items[0].Search, items[3].Search)
	}
	if items[0].Search == items[1].Search {
		t.Error("expanded search items alias the same request struct")
	}
	// Items with different alpha values must hold separate pointers (items
	// 0 and 2 differ on the alpha axis).
	if items[0].Search.Alpha == items[2].Search.Alpha {
		t.Error("expanded search items alias each other's alpha")
	}
}

func TestSweepExpandRejections(t *testing.T) {
	for name, tmpl := range map[string]SweepTemplate{
		"neither":            {SpacingMM: []float64{1}},
		"both":               {Solve: sweepBase(), Search: &SearchRequest{}},
		"solve_search_axis":  {Solve: sweepBase(), Alphas: []float64{0.5}},
		"search_solve_axis":  {Search: &SearchRequest{}, SpacingMM: []float64{1}},
		"search_cores_axis":  {Search: &SearchRequest{}, Cores: []int{64}},
		"solve_beyond_limit": {Solve: sweepBase(), Cores: make([]int, maxBatchItems+1)},
	} {
		if _, err := tmpl.Expand(); err == nil {
			t.Errorf("%s: Expand succeeded, want an error", name)
		}
	}
}

// batchCoalesceBody holds three solves of which the first two snap to one
// canonical geometry (spacing 1.0 vs 1.1 both round to the 0.5 mm grid:
// identical S3 and outer edge in half-millimeters), plus one cost item.
const batchCoalesceBody = `{"items": [
  {"solve": {"placement": {"chiplets": 4, "spacing_mm": 1.0}, "benchmark": "cholesky", "freq_mhz": 533, "cores": 128, "grid_n": 8}},
  {"solve": {"placement": {"chiplets": 4, "spacing_mm": 1.1}, "benchmark": "cholesky", "freq_mhz": 533, "cores": 128, "grid_n": 8}},
  {"solve": {"placement": {"chiplets": 4, "spacing_mm": 2.0}, "benchmark": "cholesky", "freq_mhz": 533, "cores": 128, "grid_n": 8}},
  {"cost": {"chiplets": 4, "interposer_mm": 40}}
]}`

func TestBatchCoalescing(t *testing.T) {
	s := testServer(t, nil)
	h := s.Handler()
	rec := postJSON(t, h, "/v1/batch", batchCoalesceBody)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body = %s", rec.Code, rec.Body)
	}
	var resp BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Total != 4 || resp.UniqueKeys != 2 || resp.Coalesced != 1 || resp.Computed != 2 || resp.CacheHits != 0 {
		t.Fatalf("counters = %+v, want total 4 / unique 2 / coalesced 1 / computed 2", resp)
	}
	// 3 cacheable items, 2 computations: a third of the work was reclaimed.
	if math.Abs(resp.CoalesceHitRatio-1.0/3.0) > 1e-9 {
		t.Errorf("coalesce_hit_ratio = %g, want 1/3", resp.CoalesceHitRatio)
	}
	it := resp.Items
	if it[0].Key != it[1].Key || !it[1].Coalesced || it[0].Coalesced {
		t.Errorf("near-duplicates did not coalesce: %+v / %+v", it[0], it[1])
	}
	if it[0].Solve.PeakC != it[1].Solve.PeakC {
		t.Errorf("coalesced members diverged: %g vs %g", it[0].Solve.PeakC, it[1].Solve.PeakC)
	}
	if it[2].Key == it[0].Key {
		t.Error("distinct spacing 2.0 coalesced with spacing 1.0")
	}
	if it[3].Kind != "cost" || it[3].Cost == nil || it[3].Cost.CostUSD <= 0 || it[3].Key != "" {
		t.Errorf("cost item = %+v, want an inline result with no cache key", it[3])
	}

	// The single endpoint must agree bit for bit and hit the batch-filled
	// cache (batch results are retained, not private to the batch).
	one := postJSON(t, h, "/v1/thermal/solve",
		`{"placement": {"chiplets": 4, "spacing_mm": 1.0}, "benchmark": "cholesky", "freq_mhz": 533, "cores": 128, "grid_n": 8}`)
	var single SolveResponse
	if err := json.Unmarshal(one.Body.Bytes(), &single); err != nil {
		t.Fatal(err)
	}
	if !single.Cached || single.PeakC != it[0].Solve.PeakC {
		t.Errorf("single endpoint: cached=%v peak=%g, want cache hit matching batch %g",
			single.Cached, single.PeakC, it[0].Solve.PeakC)
	}

	// An identical batch is all cache hits: zero new computations.
	rec = postJSON(t, h, "/v1/batch", batchCoalesceBody)
	var again BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &again); err != nil {
		t.Fatal(err)
	}
	if again.Computed != 0 || again.CacheHits != 2 || again.CoalesceHitRatio != 1 {
		t.Errorf("warm batch = %+v, want computed 0 / cache_hits 2 / ratio 1", again)
	}

	expo := scrape(t, h)
	if v := metricValue(t, expo, "chipletd_batch_items_total"); v != 8 {
		t.Errorf("batch items metric = %v, want 8", v)
	}
	if v := metricValue(t, expo, "chipletd_batch_coalesced_total"); v != 2 {
		t.Errorf("batch coalesced metric = %v, want 2", v)
	}
}

func TestBatchSweepEndpoint(t *testing.T) {
	s := testServer(t, nil)
	body := `{
	  "items": [{"cost": {"chiplets": 4, "interposer_mm": 40}}],
	  "sweep": {
	    "solve": {"placement": {"chiplets": 4, "spacing_mm": 1.0}, "benchmark": "cholesky", "freq_mhz": 533, "cores": 128, "grid_n": 8},
	    "spacing_mm": [1.0, 1.1],
	    "freq_mhz": [533, 800]
	  }
	}`
	rec := postJSON(t, s.Handler(), "/v1/batch", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body = %s", rec.Code, rec.Body)
	}
	var resp BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	// Explicit items come first, then the expanded sweep: 1 cost + 2*2
	// solves, of which each frequency's two spacings share one key.
	if resp.Total != 5 || resp.UniqueKeys != 2 || resp.Coalesced != 2 {
		t.Fatalf("counters = %+v, want total 5 / unique 2 / coalesced 2", resp)
	}
	if resp.Items[0].Kind != "cost" {
		t.Errorf("item 0 kind = %s, want the explicit cost item first", resp.Items[0].Kind)
	}
	for i := 1; i <= 4; i++ {
		if resp.Items[i].Kind != "solve" || resp.Items[i].Status != http.StatusOK {
			t.Errorf("sweep item %d = %+v, want an OK solve", i, resp.Items[i])
		}
	}
}

func TestBatchValidation(t *testing.T) {
	s := testServer(t, nil)
	h := s.Handler()
	for name, body := range map[string]string{
		"empty":          `{}`,
		"sweep_both":     `{"sweep": {"solve": {"placement": {"chiplets": 1}}, "search": {"benchmark": "swaptions"}}}`,
		"sweep_bad_axis": `{"sweep": {"solve": {"placement": {"chiplets": 1}}, "alphas": [0.5]}}`,
		"malformed":      `{"items": [`,
		"unknown_field":  `{"wat": 1}`,
	} {
		if rec := postJSON(t, h, "/v1/batch", body); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (body %s)", name, rec.Code, rec.Body)
		}
	}

	// Over the post-expansion limit: rejected wholesale.
	var big BatchRequest
	for i := 0; i < maxBatchItems+1; i++ {
		big.Items = append(big.Items, BatchItem{Cost: &CostRequest{Chiplets: 1}})
	}
	raw, _ := json.Marshal(big)
	if rec := postJSON(t, h, "/v1/batch", string(raw)); rec.Code != http.StatusBadRequest {
		t.Errorf("oversized batch: status = %d, want 400", rec.Code)
	}

	// A bad item fails alone; the rest of the batch still runs.
	mixed := `{"items": [
	  {},
	  {"cost": {"chiplets": 4, "interposer_mm": 40}, "solve": {"placement": {"chiplets": 1}}},
	  {"solve": {"placement": {"chiplets": 4, "spacing_mm": 1.0}, "benchmark": "cholesky", "freq_mhz": 111, "cores": 128, "grid_n": 8}},
	  {"cost": {"chiplets": 4, "interposer_mm": 40}}
	]}`
	rec := postJSON(t, h, "/v1/batch", mixed)
	if rec.Code != http.StatusOK {
		t.Fatalf("mixed batch status = %d, body = %s", rec.Code, rec.Body)
	}
	var resp BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	for i, wantStatus := range []int{400, 400, 400, 200} {
		if resp.Items[i].Status != wantStatus {
			t.Errorf("item %d status = %d (%s), want %d", i, resp.Items[i].Status, resp.Items[i].Error, wantStatus)
		}
	}
	if resp.Items[3].Cost == nil {
		t.Error("the valid cost item should still have computed")
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	name string
	data string
}

// parseSSE reads "event:"/"data:" frames until EOF (or the reader errors).
func parseSSE(r io.Reader) []sseEvent {
	var (
		events []sseEvent
		cur    sseEvent
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "" && cur.name != "":
			events = append(events, cur)
			cur = sseEvent{}
		}
	}
	return events
}

func TestBatchStreamSSE(t *testing.T) {
	s := testServer(t, nil)
	rec := postJSON(t, s.Handler(), "/v1/batch?stream=1", batchCoalesceBody)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body = %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type = %q, want text/event-stream", ct)
	}
	events := parseSSE(rec.Body)
	items := map[int]BatchItemResult{}
	var done *BatchResponse
	for _, ev := range events {
		switch ev.name {
		case "item":
			var it BatchItemResult
			if err := json.Unmarshal([]byte(ev.data), &it); err != nil {
				t.Fatalf("item event %q: %v", ev.data, err)
			}
			items[it.Index] = it
		case "done":
			done = &BatchResponse{}
			if err := json.Unmarshal([]byte(ev.data), done); err != nil {
				t.Fatalf("done event %q: %v", ev.data, err)
			}
		}
	}
	if len(items) != 4 {
		t.Fatalf("streamed %d item events, want one per item (4)", len(items))
	}
	for i := 0; i < 4; i++ {
		if items[i].Status != http.StatusOK {
			t.Errorf("item %d status = %d (%s)", i, items[i].Status, items[i].Error)
		}
	}
	if done == nil {
		t.Fatal("no done event")
	}
	if done.Total != 4 || done.UniqueKeys != 2 || done.Items != nil {
		t.Errorf("done = %+v, want totals only (items already streamed)", done)
	}
	if items[0].Solve.PeakC != items[1].Solve.PeakC || !items[1].Coalesced {
		t.Errorf("streamed coalesced members diverged: %+v / %+v", items[0], items[1])
	}
}

func TestSearchStreamSSE(t *testing.T) {
	s := testServer(t, nil)
	h := s.Handler()
	// auditSearchBody (n=16) runs the multi-start greedy, whose restart and
	// move events are the live progress feed; n=4 takes the restart-free
	// fast path and would stream only the final result.
	rec := postJSON(t, h, "/v1/org/search?stream=1", auditSearchBody)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body = %s", rec.Code, rec.Body)
	}
	events := parseSSE(rec.Body)
	var progress int
	var result *SearchResponse
	for _, ev := range events {
		switch ev.name {
		case "search":
			progress++
		case "result":
			result = &SearchResponse{}
			if err := json.Unmarshal([]byte(ev.data), result); err != nil {
				t.Fatalf("result event %q: %v", ev.data, err)
			}
		}
	}
	if progress == 0 {
		t.Error("no live search progress events (restarts/incumbents) streamed")
	}
	if result == nil || !result.Feasible || result.Cached {
		t.Fatalf("result = %+v, want a fresh feasible search", result)
	}

	// The streamed search fills the same cache as the plain endpoint: a
	// second stream replays the result without progress events.
	events = parseSSE(postJSON(t, h, "/v1/org/search?stream=1", auditSearchBody).Body)
	progress, result = 0, nil
	for _, ev := range events {
		switch ev.name {
		case "search":
			progress++
		case "result":
			result = &SearchResponse{}
			if err := json.Unmarshal([]byte(ev.data), result); err != nil {
				t.Fatal(err)
			}
		}
	}
	if progress != 0 || result == nil || !result.Cached {
		t.Errorf("warm stream: %d progress events, result %+v; want 0 and a cached result", progress, result)
	}
}

// TestBatchClientDisconnect covers the cancellation contract: dropping the
// connection mid-batch cancels the remaining items, while items that already
// completed stay in the result cache.
func TestBatchClientDisconnect(t *testing.T) {
	s := testServer(t, func(o *Options) { o.Workers = 1 })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Warm item A so the batch answers it instantly from cache; item B is
	// the computation we abandon.
	resp, err := http.Post(ts.URL+"/v1/thermal/solve", "application/json", strings.NewReader(solveBody))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	// Pin the single worker with a big external solve so item B is still
	// queued — not racing to completion — when the client hangs up.
	pinBody := strings.Replace(solveBody, `"grid_n": 8`, `"grid_n": 128`, 1)
	pinBody = strings.Replace(pinBody, `"cores": 128`, `"cores": 32`, 1)
	var pin sync.WaitGroup
	pin.Add(1)
	go func() {
		defer pin.Done()
		resp, err := http.Post(ts.URL+"/v1/thermal/solve", "application/json", strings.NewReader(pinBody))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	defer pin.Wait()
	time.Sleep(100 * time.Millisecond)

	slowBody := strings.Replace(solveBody, `"grid_n": 8`, `"grid_n": 32`, 1)
	batch := fmt.Sprintf(`{"items": [{"solve": %s}, {"solve": %s}]}`, solveBody, slowBody)

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/batch?stream=1", strings.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Read until item A's completion event, then hang up.
	sc := bufio.NewScanner(resp.Body)
	sawA := false
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var it BatchItemResult
		if json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &it) == nil &&
			it.Index == 0 && it.Status == http.StatusOK && it.Solve != nil {
			sawA = true
			break
		}
	}
	if !sawA {
		t.Fatal("never saw item 0 complete before disconnecting")
	}
	cancel()

	// Completed item A is retained in the cache.
	resp, err = http.Post(ts.URL+"/v1/thermal/solve", "application/json", strings.NewReader(solveBody))
	if err != nil {
		t.Fatal(err)
	}
	var a SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&a); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !a.Cached {
		t.Error("item completed before the disconnect was not retained in the cache")
	}

	// Item B's abandoned computation was cancelled, not published: asking
	// for it now computes it fresh (never a cache hit). Immediately after
	// the disconnect a request may briefly join the dying call and inherit
	// its cancellation; retry through that window.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err = http.Post(ts.URL+"/v1/thermal/solve", "application/json", strings.NewReader(slowBody))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			var b SolveResponse
			if err := json.Unmarshal(body, &b); err != nil {
				t.Fatal(err)
			}
			if b.Cached {
				t.Error("cancelled item's result appeared in the cache")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("item B never recomputed after the disconnect: %d %s", resp.StatusCode, body)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestBatchShedsUnderFullQueue covers clean shedding: when outside load has
// the admission queue full, batch items report per-item 503s instead of
// failing the whole batch, and the server recovers once the load drains.
func TestBatchShedsUnderFullQueue(t *testing.T) {
	s := testServer(t, func(o *Options) {
		o.Workers = 1
		o.QueueDepth = 1
		o.RequestTimeout = 60 * time.Second
	})
	h := s.Handler()

	// Two slow solves occupy the worker and the single queue slot.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := strings.Replace(solveBody, `"cores": 128`, fmt.Sprintf(`"cores": %d`, 32+32*i), 1)
			body = strings.Replace(body, `"grid_n": 8`, `"grid_n": 48`, 1)
			postJSON(t, h, "/v1/thermal/solve", body)
		}(i)
	}
	time.Sleep(100 * time.Millisecond)

	batch := `{"parallelism": 2, "items": [
	  {"solve": {"placement": {"chiplets": 4, "spacing_mm": 1.0}, "benchmark": "cholesky", "freq_mhz": 533, "cores": 96, "grid_n": 8}},
	  {"solve": {"placement": {"chiplets": 4, "spacing_mm": 1.0}, "benchmark": "cholesky", "freq_mhz": 533, "cores": 160, "grid_n": 8}}
	]}`
	rec := postJSON(t, h, "/v1/batch", batch)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch under load: status = %d, want 200 with per-item errors (body %s)", rec.Code, rec.Body)
	}
	var resp BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	shed := 0
	for _, it := range resp.Items {
		switch it.Status {
		case http.StatusServiceUnavailable:
			shed++
		case http.StatusOK:
		default:
			t.Errorf("item %d status = %d (%s), want 200 or 503", it.Index, it.Status, it.Error)
		}
	}
	if shed == 0 {
		t.Error("no batch item was shed with 503 despite a full queue")
	}
	wg.Wait()

	// Load drained: the identical batch now completes fully.
	rec = postJSON(t, h, "/v1/batch", batch)
	var after BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &after); err != nil {
		t.Fatal(err)
	}
	for _, it := range after.Items {
		if it.Status != http.StatusOK {
			t.Errorf("after drain: item %d status = %d (%s)", it.Index, it.Status, it.Error)
		}
	}
}

func TestSearchWorkersAutoCap(t *testing.T) {
	ncpu := runtime.NumCPU()
	s := testServer(t, func(o *Options) { o.SearchWorkers = ncpu * 4 })
	if s.opts.SearchWorkers != ncpu {
		t.Errorf("daemon search workers = %d, want capped at NumCPU = %d", s.opts.SearchWorkers, ncpu)
	}

	// Per-request pins are capped the same way, and the cap never forks the
	// cache identity: worker counts are wall-clock knobs, not result inputs.
	mk := func(workers int) *SearchRequest {
		var req SearchRequest
		body := fmt.Sprintf(`{"benchmark": "swaptions", "thermal_grid_n": 8, "chiplet_counts": [4], "starts": 1, "search_workers": %d}`, workers)
		if err := json.Unmarshal([]byte(body), &req); err != nil {
			t.Fatal(err)
		}
		return &req
	}
	cfg, keyBig, err := s.resolveSearch(mk(4096))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.SearchWorkers != ncpu {
		t.Errorf("per-request search workers = %d, want capped at %d", cfg.SearchWorkers, ncpu)
	}
	_, keySerial, err := s.resolveSearch(mk(1))
	if err != nil {
		t.Fatal(err)
	}
	if keyBig != keySerial {
		t.Error("worker count forked the canonical search key")
	}
}
