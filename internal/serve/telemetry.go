package serve

import (
	"time"

	"chiplet25d/internal/obs"
	"chiplet25d/internal/obs/export"
	"chiplet25d/internal/serve/metrics"
)

// Telemetry egress wiring: the adapter from the hand-rolled metrics
// registry to the OTLP exporter's input shape, plus registration of the Go
// runtime collector and the exporter's own self-telemetry.

// metricsSource adapts the registry's snapshot to the exporter's metric
// shape, keeping internal/obs/export free of serve dependencies.
func metricsSource(reg *metrics.Registry) func() []export.Metric {
	return func() []export.Metric {
		fams := reg.Snapshot()
		out := make([]export.Metric, 0, len(fams))
		for _, f := range fams {
			m := export.Metric{Name: f.Name, Description: f.Help}
			switch f.Type {
			case "counter":
				m.Type = export.TypeCounter
			case "histogram":
				m.Type = export.TypeHistogram
			default:
				m.Type = export.TypeGauge
			}
			for _, p := range f.Points {
				pt := export.Point{Attrs: p.Labels, Value: p.Value}
				if p.Hist != nil {
					pt.Hist = &export.HistPoint{
						Bounds: p.Hist.Bounds,
						Counts: p.Hist.Counts,
						Sum:    p.Hist.Sum,
						Count:  p.Hist.Count,
					}
				}
				m.Points = append(m.Points, pt)
			}
			out = append(out, m)
		}
		return out
	}
}

// toHistSnapshot converts a rebucketed runtime histogram to the registry's
// callback shape.
func toHistSnapshot(h obs.RuntimeHist) metrics.HistSnapshot {
	return metrics.HistSnapshot{Bounds: h.Bounds, Counts: h.Counts, Sum: h.Sum, Count: h.Count}
}

// registerRuntimeMetrics exposes Go runtime health: goroutines, heap, GC
// cycles, and the two latency distributions (GC pause, scheduler latency)
// rebucketed from runtime/metrics. All callbacks share one collector whose
// 1s cache bounds the cost of concurrent scrapes.
func (s *Server) registerRuntimeMetrics() {
	rc := obs.NewRuntimeCollector(time.Second)
	s.reg.GaugeFunc("chipletd_go_goroutines",
		"Live goroutines.",
		func() float64 { return rc.Stats().Goroutines })
	s.reg.GaugeFunc("chipletd_go_heap_bytes",
		"Bytes of live heap objects.",
		func() float64 { return rc.Stats().HeapBytes })
	s.reg.GaugeFunc("chipletd_go_heap_objects",
		"Live heap objects.",
		func() float64 { return rc.Stats().HeapObjects })
	s.reg.CounterFunc("chipletd_go_gc_cycles_total",
		"Completed GC cycles.",
		func() float64 { return rc.Stats().GCCycles })
	s.reg.HistogramFunc("chipletd_go_gc_pause_seconds",
		"Distribution of GC stop-the-world pause durations.",
		func() metrics.HistSnapshot { return toHistSnapshot(rc.Stats().GCPause) })
	s.reg.HistogramFunc("chipletd_go_sched_latency_seconds",
		"Distribution of goroutine scheduling latency.",
		func() metrics.HistSnapshot { return toHistSnapshot(rc.Stats().SchedLatency) })
}

// registerExporterMetrics exposes the OTLP exporter's self-telemetry. The
// callbacks are nil-safe (a disabled exporter reads as zeros), so they are
// registered unconditionally.
func (s *Server) registerExporterMetrics() {
	s.reg.CounterFunc("chipletd_otlp_exported_traces_total",
		"Request traces successfully exported over OTLP.",
		func() float64 { return float64(s.exporter.Stats().Exported) })
	s.reg.CounterFunc("chipletd_otlp_dropped_traces_total",
		"Traces evicted from the full export queue (drop-oldest backpressure).",
		func() float64 { return float64(s.exporter.Stats().Dropped) })
	s.reg.CounterFunc("chipletd_otlp_sampled_out_traces_total",
		"Completed traces the tail sampler chose not to export.",
		func() float64 { return float64(s.exporter.Stats().Sampled) })
	s.reg.CounterFunc("chipletd_otlp_export_errors_total",
		"Failed OTLP export POSTs (traces and metrics).",
		func() float64 { return float64(s.exporter.Stats().Errors) })
	s.reg.GaugeFunc("chipletd_otlp_queue_depth",
		"Traces waiting in the export queue.",
		func() float64 { return float64(s.exporter.Stats().QueueDepth) })
}
