package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"time"

	"chiplet25d/internal/config"
	"chiplet25d/internal/cost"
	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/obs"
	"chiplet25d/internal/org"
	"chiplet25d/internal/perf"
	"chiplet25d/internal/power"
	"chiplet25d/internal/serve/pool"
	"chiplet25d/internal/thermal"
)

// statusClientClosed is the nginx-convention code for "client went away
// before the response" — used for the request counter label and (moot, the
// client is gone) the response status.
const statusClientClosed = 499

// errorResponse is the JSON error envelope. RequestID lets a client quote
// the failing request when digging through logs or /debug/solves.
type errorResponse struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

// decodeJSON strictly decodes a bounded request body.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid JSON request: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("invalid JSON request: trailing data after the object")
	}
	return nil
}

// errStatus maps computation errors to HTTP status codes.
func errStatus(err error) int {
	switch {
	case errors.Is(err, pool.ErrQueueFull), errors.Is(err, pool.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return statusClientClosed
	default:
		return http.StatusInternalServerError
	}
}

// finish writes the JSON response and records the request metrics.
func (s *Server) finish(w http.ResponseWriter, endpoint string, code int, v any, start time.Time) {
	s.requests.With(endpoint, fmt.Sprintf("%d", code)).Inc()
	s.solveLatency.Observe(time.Since(start).Seconds())
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) fail(w http.ResponseWriter, r *http.Request, endpoint string, code int, err error, start time.Time) {
	s.finish(w, endpoint, code, errorResponse{Error: err.Error(), RequestID: obs.RequestID(r.Context())}, start)
}

// wantTrace reports whether the client asked for the span trace inline
// (?trace=1).
func wantTrace(r *http.Request) bool { return r.URL.Query().Get("trace") == "1" }

// wantAudit reports whether the client asked for the search convergence
// audit trail inline (?audit=1).
func wantAudit(r *http.Request) bool { return r.URL.Query().Get("audit") == "1" }

// snapshotTrace finalizes and serializes the request's trace for inline
// return; nil on an untraced context. Finishing here (rather than in the
// middleware) excludes only the JSON encode from the reported duration, and
// the middleware's later Finish is an idempotent no-op.
func snapshotTrace(ctx context.Context) *obs.TraceJSON {
	tr := obs.TraceFrom(ctx)
	if tr == nil {
		return nil
	}
	tr.Finish()
	return tr.Snapshot()
}

// ---------------------------------------------------------------------------
// POST /v1/thermal/solve

// PlacementSpec selects a chiplet organization in a request. Exactly one
// geometry mode applies: chiplets == 1 is the monolithic 2D baseline;
// spacing_mm places a uniform r x r matrix; interposer_mm derives s3 from
// the interposer size (Eq. (9)) given s1/s2; otherwise s1/s2/s3 are used
// directly (the paper's Fig. 4(a) organizations).
type PlacementSpec struct {
	Chiplets     int      `json:"chiplets"`
	SpacingMM    *float64 `json:"spacing_mm,omitempty"`
	S1MM         float64  `json:"s1_mm,omitempty"`
	S2MM         float64  `json:"s2_mm,omitempty"`
	S3MM         float64  `json:"s3_mm,omitempty"`
	InterposerMM *float64 `json:"interposer_mm,omitempty"`
}

// Resolve materializes and validates the placement.
func (ps PlacementSpec) Resolve() (floorplan.Placement, error) {
	var (
		pl  floorplan.Placement
		err error
	)
	switch {
	case ps.Chiplets == 1:
		pl = floorplan.SingleChip()
	case ps.Chiplets < 1:
		return floorplan.Placement{}, fmt.Errorf("placement: chiplets must be >= 1, got %d", ps.Chiplets)
	case ps.SpacingMM != nil:
		r := 1
		for r*r < ps.Chiplets {
			r++
		}
		if r*r != ps.Chiplets {
			return floorplan.Placement{}, fmt.Errorf("placement: chiplet count %d is not a square (spacing_mm mode)", ps.Chiplets)
		}
		pl, err = floorplan.UniformGrid(r, *ps.SpacingMM)
	case ps.InterposerMM != nil:
		pl, err = floorplan.PaperOrgForInterposer(ps.Chiplets, *ps.InterposerMM, ps.S1MM, ps.S2MM)
	default:
		pl, err = floorplan.PaperOrg(ps.Chiplets, ps.S1MM, ps.S2MM, ps.S3MM)
	}
	if err != nil {
		return floorplan.Placement{}, fmt.Errorf("placement: %w", err)
	}
	if err := pl.Validate(); err != nil {
		return floorplan.Placement{}, fmt.Errorf("placement: %w", err)
	}
	return pl, nil
}

// SolveRequest asks for one steady-state leakage-coupled solve.
type SolveRequest struct {
	Placement PlacementSpec `json:"placement"`
	Benchmark string        `json:"benchmark"`
	FreqMHz   float64       `json:"freq_mhz"`
	Cores     int           `json:"cores"`
	GridN     int           `json:"grid_n,omitempty"` // default 64 (the paper's resolution)
}

// SolveResponse reports the converged solve. Trace is the request's span
// tree, included only when the client asked with ?trace=1.
type SolveResponse struct {
	PeakC             float64        `json:"peak_c"`
	TotalPowerW       float64        `json:"total_power_w"`
	MeshPowerW        float64        `json:"mesh_power_w"`
	LeakageIterations int            `json:"leakage_iterations"`
	CGIterations      int            `json:"cg_iterations"`
	Cached            bool           `json:"cached"`
	CacheKey          string         `json:"cache_key"`
	ElapsedMS         float64        `json:"elapsed_ms"`
	Trace             *obs.TraceJSON `json:"trace,omitempty"`
}

// solveSpec is a fully validated solve request.
type solveSpec struct {
	pl    floorplan.Placement
	bench perf.Benchmark
	op    power.DVFSPoint
	fIdx  int
	cores int
	gridN int
	// kthreads is the server's per-solve kernel-thread budget. It is
	// excluded from cacheKey: thread count never changes the bits of the
	// result (thermal's determinism contract), only the wall clock.
	kthreads int
	// precond and warmStart are the server's solver-acceleration settings
	// (Options.Preconditioner/WarmStart). Excluded from cacheKey by the
	// same rule as kthreads, one notch weaker: they change how fast a
	// solve converges, and the result only to within the CG tolerance
	// (~1e-6 °C), never which answer a request gets.
	precond   string
	warmStart bool
}

func (req *SolveRequest) resolve(maxGridN int) (*solveSpec, error) {
	pl, err := req.Placement.Resolve()
	if err != nil {
		return nil, err
	}
	b, err := perf.ByName(req.Benchmark)
	if err != nil {
		return nil, err
	}
	fIdx := -1
	for i, op := range power.FrequencySet {
		if op.FreqMHz == req.FreqMHz {
			fIdx = i
			break
		}
	}
	if fIdx < 0 {
		return nil, fmt.Errorf("freq_mhz %g not in the DVFS table %v", req.FreqMHz, power.FrequencySet)
	}
	if req.Cores < 1 || req.Cores > floorplan.NumCores {
		return nil, fmt.Errorf("cores %d out of range [1, %d]", req.Cores, floorplan.NumCores)
	}
	gridN := req.GridN
	if gridN == 0 {
		gridN = 64
	}
	if gridN < 4 || gridN%4 != 0 || gridN > maxGridN {
		return nil, fmt.Errorf("grid_n %d must be a multiple of 4 in [4, %d]", gridN, maxGridN)
	}
	return &solveSpec{pl: pl, bench: b, op: power.FrequencySet[fIdx], fIdx: fIdx, cores: req.Cores, gridN: gridN}, nil
}

// hm snaps a length to the 0.5 mm placement grid (half-millimeter units),
// the resolution at which two geometries are thermally identical.
func hm(v float64) int { return int(math.Round(v * 2)) }

// precondLabel canonicalizes a preconditioner setting for the
// chipletd_cg_iterations metric label (empty means thermal's default).
func precondLabel(p string) string {
	if p == "" {
		return thermal.PrecondIC0
	}
	return p
}

// cacheKey is the content address of the solve: every input that changes
// the converged result participates; formatting or field order never does.
func (sp *solveSpec) cacheKey() string {
	h := sha256.Sum256([]byte(fmt.Sprintf(
		"solve|v1|bench=%s|f=%d|p=%d|grid=%d|n=%d|w=%d|h=%d|s1=%d|s2=%d|s3=%d",
		sp.bench.Name, sp.fIdx, sp.cores, sp.gridN,
		sp.pl.NumChiplets(), hm(sp.pl.W), hm(sp.pl.H), hm(sp.pl.S1), hm(sp.pl.S2), hm(sp.pl.S3))))
	return "solve:" + hex.EncodeToString(h[:])
}

// engineConfig maps the solve spec onto the evaluation-engine configuration
// whose physics fingerprint selects (or constructs) the process-wide engine
// for this grid resolution.
func (sp *solveSpec) engineConfig() org.Config {
	cfg := org.DefaultConfig(sp.bench)
	cfg.Thermal.Nx, cfg.Thermal.Ny = sp.gridN, sp.gridN
	cfg.Thermal.KernelThreads = sp.kthreads
	cfg.Thermal.Preconditioner = sp.precond
	cfg.WarmStart = sp.warmStart
	return cfg
}

// run executes the solve (on a pool worker) through the shared evaluation
// engine, so individual solves and org searches on the same physics dedupe
// into one memo tier.
func (sp *solveSpec) run(ctx context.Context, s *Server) (*SolveResponse, org.EvalStats, error) {
	eng, err := s.engine(sp.engineConfig())
	if err != nil {
		return nil, org.EvalStats{}, err
	}
	ctx, esp := obs.Start(ctx, "engine.lookup")
	rec, st, err := eng.Simulate(ctx, sp.bench, sp.pl, sp.op, sp.cores)
	esp.SetAttr("memo_hit", st.MemoHits > 0)
	esp.SetAttr("dedup_waits", st.DedupWaits)
	esp.End()
	if err != nil {
		return nil, st, err
	}
	return &SolveResponse{
		PeakC:             rec.PeakC,
		TotalPowerW:       rec.TotalPowerW,
		MeshPowerW:        rec.MeshPowerW,
		LeakageIterations: rec.LeakageIterations,
		CGIterations:      rec.CGIterations,
	}, st, nil
}

// resolveSolve validates a solve request and applies the daemon's solver
// settings, returning the spec and its canonical cache key — the same
// normal form the batch coalescer dedups on.
func (s *Server) resolveSolve(req *SolveRequest) (*solveSpec, string, error) {
	sp, err := req.resolve(s.opts.MaxGridN)
	if err != nil {
		return nil, "", err
	}
	sp.kthreads = s.opts.KernelThreads
	sp.precond = s.opts.Preconditioner
	sp.warmStart = s.opts.WarmStart
	return sp, sp.cacheKey(), nil
}

// solveComputer returns the pool-task body for one resolved solve — the
// computation shared by POST /v1/thermal/solve and batch solve items.
func (s *Server) solveComputer(sp *solveSpec) func(context.Context) (any, error) {
	return func(taskCtx context.Context) (any, error) {
		res, st, err := sp.run(taskCtx, s)
		// Fresh-simulation metrics count only work this request actually
		// ran; an engine-memo hit is free and must not inflate them.
		if err == nil && st.Sims > 0 {
			s.thermalSims.Add(float64(st.Sims))
			s.cgIterations.Add(float64(st.CGIterations))
			s.cgIterHist.With(precondLabel(sp.precond)).Observe(float64(res.CGIterations))
			s.leakIterHist.Observe(float64(res.LeakageIterations))
		}
		return res, err
	}
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	const endpoint = "thermal_solve"
	start := time.Now()
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	defer cancel()
	var req SolveRequest
	if err := decodeJSON(r, &req); err != nil {
		s.fail(w, r, endpoint, http.StatusBadRequest, err, start)
		return
	}
	sp, key, err := s.resolveSolve(&req)
	if err != nil {
		s.fail(w, r, endpoint, http.StatusBadRequest, err, start)
		return
	}
	// The cache runs the computation on a context detached from this
	// request (its lifetime is refcounted across all waiters), so the
	// closure reattaches the trace/logger/request ID before handing the
	// work to the pool.
	ctx, csp := obs.Start(ctx, "cache.lookup")
	val, hit, err := s.cache.Do(ctx, key, func(runCtx context.Context) (any, error) {
		runCtx = obs.Reattach(runCtx, ctx)
		return s.pool.Do(runCtx, s.solveComputer(sp))
	})
	csp.SetAttr("hit", hit)
	csp.SetAttr("key", key)
	csp.End()
	if tr := obs.TraceFrom(ctx); tr != nil {
		if hit {
			tr.SetAttr("cache", "hit")
		} else {
			tr.SetAttr("cache", "miss")
		}
	}
	if err != nil {
		s.fail(w, r, endpoint, errStatus(err), err, start)
		return
	}
	if hit {
		s.cacheHits.With(endpoint).Inc()
	} else {
		s.cacheMisses.With(endpoint).Inc()
	}
	resp := *(val.(*SolveResponse)) // copy: the cached value is shared
	resp.Cached = hit
	resp.CacheKey = key
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1e3
	if wantTrace(r) {
		resp.Trace = snapshotTrace(ctx)
	}
	s.finish(w, endpoint, http.StatusOK, resp, start)
}

// ---------------------------------------------------------------------------
// POST /v1/org/search

// SearchRequest is the full optimizer configuration schema (identical to a
// config file: absent fields keep the paper defaults) plus the serving
// switch between the greedy and exhaustive placement search.
type SearchRequest struct {
	config.File
	Exhaustive bool `json:"exhaustive,omitempty"`
}

// OrgJSON is one organization in a response.
type OrgJSON struct {
	Chiplets     int     `json:"chiplets"`
	S1MM         float64 `json:"s1_mm"`
	S2MM         float64 `json:"s2_mm"`
	S3MM         float64 `json:"s3_mm"`
	InterposerMM float64 `json:"interposer_mm"`
	FreqMHz      float64 `json:"freq_mhz"`
	ActiveCores  int     `json:"active_cores"`
	PeakC        float64 `json:"peak_c"`
	IPS          float64 `json:"gips"`
	CostUSD      float64 `json:"cost_usd"`
	NormPerf     float64 `json:"norm_perf"`
	NormCost     float64 `json:"norm_cost"`
	ObjValue     float64 `json:"obj_value"`
}

// BaselineJSON is the 2D reference in a response.
type BaselineJSON struct {
	Feasible    bool    `json:"feasible"`
	BestIPS     float64 `json:"best_gips"`
	FreqMHz     float64 `json:"freq_mhz"`
	ActiveCores int     `json:"active_cores"`
	PeakC       float64 `json:"peak_c"`
	CostUSD     float64 `json:"cost_usd"`
}

// SearchResponse reports an optimization run. Trace is the request's span
// tree, included only when the client asked with ?trace=1.
type SearchResponse struct {
	Feasible      bool         `json:"feasible"`
	Best          *OrgJSON     `json:"best,omitempty"`
	Baseline      BaselineJSON `json:"baseline"`
	ThermalSims   int          `json:"thermal_sims"`
	SurrogateHits int          `json:"surrogate_hits"`
	// ScalarSurrogateHits and SpatialSurrogateHits break SurrogateHits down
	// by fidelity tier (surrogate_hits stays the total for old clients).
	ScalarSurrogateHits  int   `json:"scalar_surrogate_hits"`
	SpatialSurrogateHits int   `json:"spatial_surrogate_hits"`
	CombosTried          int   `json:"combos_tried"`
	CGIterations         int64 `json:"cg_iterations"`
	// EngineMemoHits and EngineDedupWaits attribute this search's use of the
	// process-wide evaluation memo: evaluations answered from completed
	// entries and evaluations that joined another request's in-flight
	// simulation.
	EngineMemoHits   int64          `json:"engine_memo_hits"`
	EngineDedupWaits int64          `json:"engine_dedup_waits"`
	Cached           bool           `json:"cached"`
	CacheKey         string         `json:"cache_key"`
	ElapsedMS        float64        `json:"elapsed_ms"`
	Trace            *obs.TraceJSON `json:"trace,omitempty"`
	// Audit is the search convergence audit trail (restart seeds, accepted
	// and rejected moves, per-evaluation fidelity decisions), included only
	// when the client asked with ?audit=1. Cached responses return the trail
	// of the request that computed them.
	Audit *org.AuditTrail `json:"audit,omitempty"`
}

// searchKey canonicalizes the resolved configuration (config.Save writes
// every field explicitly, so two requests that resolve to the same search
// share one address regardless of which defaults they spelled out).
func searchKey(cfg org.Config, exhaustive bool) (string, error) {
	// Kernel threads, search workers, and scan workers are wall-clock knobs
	// with bit-identical results (thermal's and org's determinism
	// contracts), so they must not fork the content-addressed identity of a
	// search: a serial and a parallel run of the same search share one cache
	// entry. The preconditioner and warm-start knobs are excluded by the
	// same rule, one notch weaker: multigrid and IC(0) solves, seeded or
	// cold, converge to the same tolerance (~1e-6 °C; verify's differential
	// checks pin it), so they change how fast a search runs, not which
	// winner it finds.
	cfg.Thermal.KernelThreads = 0
	cfg.SearchWorkers = 0
	cfg.ParallelWorkers = 0
	cfg.Thermal.Preconditioner = ""
	cfg.WarmStart = false
	cfg.WarmStartCache = 0
	var buf bytes.Buffer
	if err := config.Save(&buf, cfg); err != nil {
		return "", err
	}
	fmt.Fprintf(&buf, "|exhaustive=%v", exhaustive)
	h := sha256.Sum256(buf.Bytes())
	return "search:" + hex.EncodeToString(h[:]), nil
}

// resolveSearch validates a search request, applies the daemon-default
// inheritance rules, and returns the resolved configuration with its
// canonical cache key — the normal form the batch coalescer dedups on.
func (s *Server) resolveSearch(req *SearchRequest) (org.Config, string, error) {
	cfg, err := req.File.ToConfig()
	if err != nil {
		return org.Config{}, "", err
	}
	if cfg.Thermal.Nx > s.opts.MaxGridN || cfg.Thermal.Ny > s.opts.MaxGridN {
		return org.Config{}, "", fmt.Errorf("thermal_grid_n %d exceeds the server limit %d", cfg.Thermal.Nx, s.opts.MaxGridN)
	}
	if req.File.SearchWorkers == nil {
		// Requests that do not pin their own restart parallelism get the
		// daemon's per-search budget.
		cfg.SearchWorkers = s.opts.SearchWorkers
	}
	if ncpu := runtime.NumCPU(); cfg.SearchWorkers > ncpu {
		// Same rule as Options.SearchWorkers: restart workers beyond the CPU
		// count only add scheduling contention, and worker count never
		// changes the winner (searchKey excludes it), so capping is safe.
		s.logger.Warn("capping per-request search workers at the CPU count",
			"requested", cfg.SearchWorkers, "num_cpu", ncpu)
		cfg.SearchWorkers = ncpu
	}
	if req.File.Preconditioner == nil && s.opts.Preconditioner != "" {
		// Requests that do not choose a preconditioner inherit the daemon's
		// (tolerance-equivalent; see searchKey).
		cfg.Thermal.Preconditioner = s.opts.Preconditioner
	}
	if req.File.WarmStart == nil && s.opts.WarmStart {
		cfg.WarmStart = true
	}
	if req.File.SpatialSurrogate == nil && s.opts.SpatialSurrogate {
		// Requests that do not choose a fidelity policy inherit the daemon's
		// spatial-tier default (winner-invariant; see Options.SpatialSurrogate).
		cfg.SpatialSurrogate = true
	}
	if cfg.Thermal.KernelThreads == 0 && cfg.SearchWorkers <= 1 && cfg.ParallelWorkers <= 1 {
		// An explicit kernel_threads in the request wins; otherwise the
		// worker budget goes to the outermost parallel level only: a serial
		// search fans out its thermal kernels with the daemon's per-solve
		// budget, while a parallel search leaves KernelThreads at 0 so
		// org.NewEngine pins kernels serial (serve pool → search workers →
		// kernel threads).
		cfg.Thermal.KernelThreads = s.opts.KernelThreads
	}
	key, err := searchKey(cfg, req.Exhaustive)
	if err != nil {
		return org.Config{}, "", err
	}
	return cfg, key, nil
}

// searchComputer returns the pool-task body for one resolved search — the
// computation shared by POST /v1/org/search (plain and ?stream=1) and batch
// search items. notify, when non-nil, observes every audit event live (the
// SSE streaming path); the audit trail itself always rides the response.
func (s *Server) searchComputer(cfg org.Config, exhaustive bool, key string, notify func(org.AuditEvent)) func(context.Context) (any, error) {
	return func(taskCtx context.Context) (any, error) {
		// Searches that share a physics substrate share one process-wide
		// engine: concurrent requests dedupe and memoize individual
		// simulations even when their search-level knobs (and hence
		// their response-cache keys) differ.
		eng, err := s.engine(cfg)
		if err != nil {
			return nil, err
		}
		sr, err := org.NewSearcherWithEngine(cfg, eng)
		if err != nil {
			return nil, err
		}
		computeStart := time.Now()
		al := org.NewAuditLog(s.opts.AuditRingSize).WithNotify(notify)
		sr.WithContext(taskCtx).WithAudit(al)
		var res org.Result
		if exhaustive {
			res, err = sr.OptimizeExhaustive()
		} else {
			res, err = sr.Optimize()
		}
		s.thermalSims.Add(float64(sr.ThermalSims()))
		s.cgIterations.Add(float64(sr.CGIterations()))
		if err != nil {
			return nil, err
		}
		if tr := obs.TraceFrom(taskCtx); tr != nil {
			tr.SetAttr("engine_memo_hits", sr.EngineHits())
			tr.SetAttr("engine_dedup_waits", sr.EngineDedupWaits())
		}
		resp := searchResponse(res, sr)
		resp.Audit = al.Trail()
		s.audits.add(auditRecord{
			RequestID: obs.RequestID(taskCtx),
			CacheKey:  key,
			Start:     computeStart,
			ElapsedMS: float64(time.Since(computeStart).Microseconds()) / 1e3,
			Feasible:  res.Feasible,
			Trail:     resp.Audit,
		})
		return resp, nil
	}
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	const endpoint = "org_search"
	start := time.Now()
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	defer cancel()
	var req SearchRequest
	if err := decodeJSON(r, &req); err != nil {
		s.fail(w, r, endpoint, http.StatusBadRequest, err, start)
		return
	}
	cfg, key, err := s.resolveSearch(&req)
	if err != nil {
		s.fail(w, r, endpoint, http.StatusBadRequest, err, start)
		return
	}
	if wantStream(r) {
		s.streamSearch(w, r, ctx, cfg, req.Exhaustive, key, start)
		return
	}
	ctx, csp := obs.Start(ctx, "cache.lookup")
	val, hit, err := s.cache.Do(ctx, key, func(runCtx context.Context) (any, error) {
		runCtx = obs.Reattach(runCtx, ctx)
		return s.pool.Do(runCtx, s.searchComputer(cfg, req.Exhaustive, key, nil))
	})
	csp.SetAttr("hit", hit)
	csp.SetAttr("key", key)
	csp.End()
	if tr := obs.TraceFrom(ctx); tr != nil {
		if hit {
			tr.SetAttr("cache", "hit")
		} else {
			tr.SetAttr("cache", "miss")
		}
	}
	if err != nil {
		s.fail(w, r, endpoint, errStatus(err), err, start)
		return
	}
	if hit {
		s.cacheHits.With(endpoint).Inc()
	} else {
		s.cacheMisses.With(endpoint).Inc()
	}
	resp := *(val.(*SearchResponse))
	resp.Cached = hit
	resp.CacheKey = key
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1e3
	if wantTrace(r) {
		resp.Trace = snapshotTrace(ctx)
	}
	if !wantAudit(r) {
		// The trail rides the cached value; strip it from the copy unless
		// this client opted in.
		resp.Audit = nil
	}
	s.finish(w, endpoint, http.StatusOK, resp, start)
}

func searchResponse(res org.Result, sr *org.Searcher) *SearchResponse {
	out := &SearchResponse{
		Feasible: res.Feasible,
		Baseline: BaselineJSON{
			Feasible:    res.Baseline.Feasible,
			BestIPS:     res.Baseline.BestIPS,
			FreqMHz:     res.Baseline.Op.FreqMHz,
			ActiveCores: res.Baseline.ActiveCores,
			PeakC:       res.Baseline.PeakC,
			CostUSD:     res.Baseline.CostUSD,
		},
		ThermalSims:          res.ThermalSims,
		SurrogateHits:        res.SurrogateHits,
		ScalarSurrogateHits:  res.ScalarSurrogateHits,
		SpatialSurrogateHits: res.SpatialSurrogateHits,
		CombosTried:          res.CombosTried,
		CGIterations:         sr.CGIterations(),
		EngineMemoHits:       sr.EngineHits(),
		EngineDedupWaits:     sr.EngineDedupWaits(),
	}
	if res.Feasible {
		b := res.Best
		out.Best = &OrgJSON{
			Chiplets:     b.N,
			S1MM:         b.S1,
			S2MM:         b.S2,
			S3MM:         b.S3,
			InterposerMM: b.InterposerMM,
			FreqMHz:      b.Op.FreqMHz,
			ActiveCores:  b.ActiveCores,
			PeakC:        b.PeakC,
			IPS:          b.IPS,
			CostUSD:      b.CostUSD,
			NormPerf:     b.NormPerf,
			NormCost:     b.NormCost,
			ObjValue:     b.ObjValue,
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// POST /v1/cost

// CostRequest queries the Eq. (1)-(4) manufacturing cost model.
type CostRequest struct {
	Chiplets     int      `json:"chiplets"`                // 1 (2D baseline), 4, or 16
	InterposerMM float64  `json:"interposer_mm,omitempty"` // required for chiplets > 1
	D0PerCM2     *float64 `json:"d0_per_cm2,omitempty"`
	BondCostUSD  *float64 `json:"bond_cost_usd,omitempty"`
}

// CostResponse reports the cost query.
type CostResponse struct {
	CostUSD         float64 `json:"cost_usd"`
	SingleChipUSD   float64 `json:"single_chip_cost_usd"`
	NormCost        float64 `json:"norm_cost"`
	ChipletYield    float64 `json:"chiplet_yield"`
	SingleChipYield float64 `json:"single_chip_yield"`
}

// costCompute evaluates one cost query; every failure is a client error
// (the model itself cannot fail). Shared by POST /v1/cost and batch items.
func costCompute(req *CostRequest) (*CostResponse, error) {
	p := cost.DefaultParams()
	if req.D0PerCM2 != nil {
		p.D0PerCM2 = *req.D0PerCM2
	}
	if req.BondCostUSD != nil {
		p.BondCost = *req.BondCostUSD
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	single := p.SingleChipCost(floorplan.ChipEdgeMM, floorplan.ChipEdgeMM)
	resp := &CostResponse{
		SingleChipUSD:   single,
		SingleChipYield: p.CMOSYield(floorplan.ChipEdgeMM * floorplan.ChipEdgeMM),
	}
	switch {
	case req.Chiplets == 1:
		resp.CostUSD = single
		resp.NormCost = 1
		resp.ChipletYield = resp.SingleChipYield
	case req.Chiplets == 4 || req.Chiplets == 16:
		minEdge := cost.MinInterposerEdge(req.Chiplets)
		if req.InterposerMM < minEdge || req.InterposerMM > floorplan.MaxInterposerEdgeMM {
			return nil, fmt.Errorf("interposer_mm %g out of range [%g, %g] for %d chiplets",
				req.InterposerMM, minEdge, floorplan.MaxInterposerEdgeMM, req.Chiplets)
		}
		resp.CostUSD = p.Cost25DForInterposer(req.Chiplets, req.InterposerMM)
		resp.NormCost = resp.CostUSD / single
		chipletArea := floorplan.ChipEdgeMM * floorplan.ChipEdgeMM / float64(req.Chiplets)
		resp.ChipletYield = p.CMOSYield(chipletArea)
	default:
		return nil, fmt.Errorf("chiplets must be 1, 4, or 16, got %d", req.Chiplets)
	}
	return resp, nil
}

func (s *Server) handleCost(w http.ResponseWriter, r *http.Request) {
	const endpoint = "cost"
	start := time.Now()
	var req CostRequest
	if err := decodeJSON(r, &req); err != nil {
		s.fail(w, r, endpoint, http.StatusBadRequest, err, start)
		return
	}
	resp, err := costCompute(&req)
	if err != nil {
		s.fail(w, r, endpoint, http.StatusBadRequest, err, start)
		return
	}
	s.finish(w, endpoint, http.StatusOK, *resp, start)
}
