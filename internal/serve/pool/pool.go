// Package pool provides chipletd's bounded worker pool: a fixed set of
// workers pulling from a bounded admission queue. The bound turns overload
// into fast 503-style rejections instead of unbounded goroutine pileup, and
// the fixed worker count keeps the number of concurrent thermal solves (each
// CPU- and memory-hungry) at a level the host can sustain.
package pool

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"chiplet25d/internal/obs"
)

// ErrQueueFull is returned by Do when the admission queue is at capacity.
var ErrQueueFull = errors.New("pool: admission queue full")

// ErrClosed is returned by Do after Shutdown has begun.
var ErrClosed = errors.New("pool: shut down")

// Task is one unit of work. It must honor ctx.
type Task func(ctx context.Context) (any, error)

type job struct {
	ctx  context.Context
	fn   Task
	done chan result
}

type result struct {
	val any
	err error
}

// Pool is a bounded worker pool. Construct with New.
type Pool struct {
	queue   chan *job
	running int32 // tasks currently executing

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup // workers
}

// New starts a pool of workers with an admission queue of queueDepth
// pending tasks (minimums of 1 apply to both).
func New(workers, queueDepth int) *Pool {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 1 {
		queueDepth = 1
	}
	p := &Pool{queue: make(chan *job, queueDepth)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for j := range p.queue {
		// A task whose submitter already gave up is skipped, not run: its
		// result channel is buffered so the send never blocks.
		if err := j.ctx.Err(); err != nil {
			j.done <- result{err: err}
			continue
		}
		atomic.AddInt32(&p.running, 1)
		v, err := j.fn(j.ctx)
		atomic.AddInt32(&p.running, -1)
		j.done <- result{val: v, err: err}
	}
}

// Do submits fn and waits for its result. Admission is non-blocking: when
// the queue is full Do fails immediately with ErrQueueFull so the caller
// can shed load (HTTP 503). While queued or running, ctx cancellation
// unblocks the caller with ctx's error; the task itself receives ctx and is
// expected to abort cooperatively.
func (p *Pool) Do(ctx context.Context, fn Task) (any, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	// Record the admission-to-execution delay as a retroactive trace span
	// once a worker picks the task up; a no-op on untraced contexts.
	submitted := time.Now()
	depthAtSubmit := len(p.queue)
	traced := func(c context.Context) (any, error) {
		obs.AddSpan(c, "pool.queue_wait", submitted, time.Since(submitted),
			obs.Attr{Key: "queue_depth_at_submit", Value: depthAtSubmit})
		return fn(c)
	}
	j := &job{ctx: ctx, fn: traced, done: make(chan result, 1)}
	select {
	case p.queue <- j:
		p.mu.Unlock()
	default:
		p.mu.Unlock()
		// The request-scoped logger already carries the request ID.
		obs.Logger(ctx).Warn("pool: admission queue full, shedding request",
			"queue_depth", depthAtSubmit)
		return nil, ErrQueueFull
	}
	select {
	case r := <-j.done:
		return r.val, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// QueueDepth returns the number of tasks waiting for a worker.
func (p *Pool) QueueDepth() int { return len(p.queue) }

// Running returns the number of tasks currently executing.
func (p *Pool) Running() int { return int(atomic.LoadInt32(&p.running)) }

// Shutdown stops admission and waits for queued and running tasks to
// drain, or for ctx to expire (in which case the remaining tasks keep
// their own contexts and the error is returned).
func (p *Pool) Shutdown(ctx context.Context) error {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.queue)
	}
	p.mu.Unlock()
	drained := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
