package pool

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestDoRunsTasks checks basic submission and result plumbing.
func TestDoRunsTasks(t *testing.T) {
	p := New(2, 4)
	defer p.Shutdown(context.Background())
	v, err := p.Do(context.Background(), func(ctx context.Context) (any, error) {
		return 7, nil
	})
	if err != nil || v != 7 {
		t.Fatalf("Do = (%v, %v), want (7, nil)", v, err)
	}
}

// TestQueueFull verifies overload turns into immediate ErrQueueFull, not
// blocking.
func TestQueueFull(t *testing.T) {
	p := New(1, 1)
	defer p.Shutdown(context.Background())
	block := make(chan struct{})
	started := make(chan struct{})
	go p.Do(context.Background(), func(ctx context.Context) (any, error) {
		close(started)
		<-block
		return nil, nil
	})
	<-started // worker busy
	// Fill the single queue slot.
	go p.Do(context.Background(), func(ctx context.Context) (any, error) { return nil, nil })
	// Wait for the queue slot to be occupied.
	for p.QueueDepth() == 0 {
		time.Sleep(time.Millisecond)
	}
	if _, err := p.Do(context.Background(), func(ctx context.Context) (any, error) { return nil, nil }); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overloaded Do = %v, want ErrQueueFull", err)
	}
	close(block)
}

// TestCtxUnblocksWaiter: a caller whose context expires while its task is
// queued gets the context error, and the skipped task never runs.
func TestCtxUnblocksWaiter(t *testing.T) {
	p := New(1, 2)
	defer p.Shutdown(context.Background())
	block := make(chan struct{})
	started := make(chan struct{})
	go p.Do(context.Background(), func(ctx context.Context) (any, error) {
		close(started)
		<-block
		return nil, nil
	})
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	var ran atomic.Bool
	_, err := p.Do(ctx, func(ctx context.Context) (any, error) {
		ran.Store(true)
		return nil, nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued Do past deadline = %v, want DeadlineExceeded", err)
	}
	close(block)
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if ran.Load() {
		t.Fatal("task with expired context was executed")
	}
}

// TestShutdownDrains verifies graceful drain: queued work completes, then
// new submissions are refused.
func TestShutdownDrains(t *testing.T) {
	p := New(2, 8)
	var done int32
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Do(context.Background(), func(ctx context.Context) (any, error) {
				time.Sleep(5 * time.Millisecond)
				atomic.AddInt32(&done, 1)
				return nil, nil
			})
		}()
	}
	time.Sleep(2 * time.Millisecond) // let (most) submissions land
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if _, err := p.Do(context.Background(), func(ctx context.Context) (any, error) { return nil, nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("Do after shutdown = %v, want ErrClosed", err)
	}
	if atomic.LoadInt32(&done) == 0 {
		t.Fatal("no queued task survived the drain")
	}
}
