package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// otlpCapture is an httptest OTLP collector that retains decoded spans.
type otlpCapture struct {
	mu    sync.Mutex
	spans []capturedSpan
}

type capturedSpan struct {
	TraceID  string `json:"traceId"`
	SpanID   string `json:"spanId"`
	ParentID string `json:"parentSpanId"`
	Name     string `json:"name"`
	Kind     int    `json:"kind"`
	Attrs    []struct {
		Key   string `json:"key"`
		Value struct {
			String *string  `json:"stringValue"`
			Int    *string  `json:"intValue"`
			Double *float64 `json:"doubleValue"`
		} `json:"value"`
	} `json:"attributes"`
}

func (c *otlpCapture) handler(t *testing.T) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/traces" {
			return // metric exports are exercised in the export package
		}
		body, _ := io.ReadAll(r.Body)
		var payload struct {
			ResourceSpans []struct {
				ScopeSpans []struct {
					Spans []capturedSpan `json:"spans"`
				} `json:"scopeSpans"`
			} `json:"resourceSpans"`
		}
		if err := json.Unmarshal(body, &payload); err != nil {
			t.Errorf("collector got invalid OTLP/JSON: %v", err)
			return
		}
		c.mu.Lock()
		defer c.mu.Unlock()
		for _, rs := range payload.ResourceSpans {
			for _, ss := range rs.ScopeSpans {
				c.spans = append(c.spans, ss.Spans...)
			}
		}
	}
}

func (c *otlpCapture) snapshot() []capturedSpan {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]capturedSpan(nil), c.spans...)
}

func (s capturedSpan) attr(key string) (string, bool) {
	for _, a := range s.Attrs {
		if a.Key != key {
			continue
		}
		switch {
		case a.Value.String != nil:
			return *a.Value.String, true
		case a.Value.Int != nil:
			return *a.Value.Int, true
		}
	}
	return "", false
}

// TestOTLPExportEndToEnd is the tentpole acceptance test: a request with an
// incoming W3C traceparent, served by the real handler stack, must arrive
// at an OTLP/JSON collector carrying the propagated trace ID, the SERVER
// root span, the engine span tree with its fidelity attribute, and the
// response must echo a traceparent parented on the propagated trace.
func TestOTLPExportEndToEnd(t *testing.T) {
	capture := &otlpCapture{}
	collector := httptest.NewServer(capture.handler(t))
	defer collector.Close()

	s := testServer(t, func(o *Options) {
		o.OTLPEndpoint = collector.URL
	})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Exporter().Shutdown(ctx)
	}()

	const (
		remoteTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
		remoteSpan  = "00f067aa0ba902b7"
	)
	// The search route is the one whose engine spans carry fidelity
	// decisions, so it exercises the full span tree.
	req := httptest.NewRequest(http.MethodPost, "/v1/org/search", strings.NewReader(searchBody))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", "00-"+remoteTrace+"-"+remoteSpan+"-01")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("search = %d: %s", rec.Code, rec.Body)
	}

	// The response joins the caller's trace and advertises the server span
	// as the new parent.
	tp := rec.Header().Get("Traceparent")
	if !strings.HasPrefix(tp, "00-"+remoteTrace+"-") {
		t.Fatalf("response traceparent %q does not join trace %s", tp, remoteTrace)
	}

	// Flush synchronously instead of waiting out the batch timer.
	if err := s.Exporter().Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	spans := capture.snapshot()
	if len(spans) == 0 {
		t.Fatal("collector received no spans")
	}
	var root, sim *capturedSpan
	for i := range spans {
		if spans[i].TraceID != remoteTrace {
			t.Errorf("span %q trace id %q, want propagated %s", spans[i].Name, spans[i].TraceID, remoteTrace)
		}
		switch {
		case spans[i].Kind == 2:
			root = &spans[i]
		case spans[i].Name == "engine.sim":
			sim = &spans[i]
		}
	}
	if root == nil {
		t.Fatal("no SERVER root span exported")
	}
	if root.Name != "org_search" || root.ParentID != remoteSpan {
		t.Errorf("root = %q parent %q, want org_search parented on %s", root.Name, root.ParentID, remoteSpan)
	}
	if v, ok := root.attr("status"); !ok || v != "200" {
		t.Errorf("root status attr = %q (%v)", v, ok)
	}
	if _, ok := root.attr("request.id"); !ok {
		t.Error("root span missing request.id")
	}
	if sim == nil {
		t.Fatal("engine.sim span not exported")
	}
	if fid, ok := sim.attr("fidelity"); !ok || fid == "" {
		t.Error("engine.sim span missing the fidelity attribute")
	}
}

// auditSearchBody uses 16 chiplets: the 4-chiplet search takes the
// paper-organization fast path with no greedy restarts, while n=16 runs the
// multi-start greedy whose seeding and moves the audit trail records.
const auditSearchBody = `{
  "benchmark": "swaptions",
  "threshold_c": 85,
  "chiplet_counts": [16],
  "interposer_min_mm": 30,
  "interposer_max_mm": 30,
  "starts": 1,
  "thermal_grid_n": 8,
  "surrogate_margin_c": -1
}`

// TestSearchAuditTrail: ?audit=1 returns the convergence audit inline with
// restart seeds and per-evaluation fidelity decisions, the plain response
// omits it, and /debug/search retains the trail for later inspection.
func TestSearchAuditTrail(t *testing.T) {
	s := testServer(t, nil)
	h := s.Handler()

	rec := postJSON(t, h, "/v1/org/search?audit=1", auditSearchBody)
	if rec.Code != http.StatusOK {
		t.Fatalf("search = %d: %s", rec.Code, rec.Body)
	}
	var resp SearchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Audit == nil || len(resp.Audit.Events) == 0 {
		t.Fatal("?audit=1 response has no audit trail")
	}
	kinds := map[string]int{}
	for _, ev := range resp.Audit.Events {
		kinds[ev.Kind]++
	}
	if kinds["restart_seeded"] == 0 {
		t.Errorf("audit has no restart_seeded events: %v", kinds)
	}
	if kinds["eval"] == 0 {
		t.Errorf("audit has no eval events: %v", kinds)
	}
	sawFidelity := false
	for _, ev := range resp.Audit.Events {
		if ev.Kind == "eval" && ev.Fidelity != "" {
			sawFidelity = true
			break
		}
	}
	if !sawFidelity {
		t.Error("no eval event carries a fidelity decision")
	}

	// Cached re-request without ?audit=1 must not leak the trail.
	rec2 := postJSON(t, h, "/v1/org/search", auditSearchBody)
	var resp2 SearchResponse
	if err := json.Unmarshal(rec2.Body.Bytes(), &resp2); err != nil {
		t.Fatal(err)
	}
	if !resp2.Cached {
		t.Error("second identical search not cached")
	}
	if resp2.Audit != nil {
		t.Error("audit trail returned without ?audit=1")
	}
	// And with ?audit=1 the cached response still carries it.
	rec3 := postJSON(t, h, "/v1/org/search?audit=1", auditSearchBody)
	var resp3 SearchResponse
	if err := json.Unmarshal(rec3.Body.Bytes(), &resp3); err != nil {
		t.Fatal(err)
	}
	if resp3.Audit == nil || len(resp3.Audit.Events) == 0 {
		t.Error("cached ?audit=1 response lost the audit trail")
	}

	// The debug ring has the computation's record.
	drec := httptest.NewRecorder()
	h.ServeHTTP(drec, httptest.NewRequest(http.MethodGet, "/debug/search", nil))
	if drec.Code != http.StatusOK {
		t.Fatalf("debug/search = %d", drec.Code)
	}
	var dbg struct {
		Searches []struct {
			RequestID string `json:"request_id"`
			CacheKey  string `json:"cache_key"`
			Feasible  bool   `json:"feasible"`
			Trail     *struct {
				Events []json.RawMessage `json:"events"`
			} `json:"trail"`
		} `json:"searches"`
	}
	if err := json.Unmarshal(drec.Body.Bytes(), &dbg); err != nil {
		t.Fatal(err)
	}
	if len(dbg.Searches) != 1 {
		t.Fatalf("debug/search has %d records, want 1 (cache hits must not re-record)", len(dbg.Searches))
	}
	if dbg.Searches[0].Trail == nil || len(dbg.Searches[0].Trail.Events) == 0 {
		t.Error("debug/search record has no trail")
	}
	if dbg.Searches[0].CacheKey != resp.CacheKey {
		t.Errorf("debug cache key %q != response %q", dbg.Searches[0].CacheKey, resp.CacheKey)
	}
}

// TestAuditDisabled: a negative ring size disables auditing end to end.
func TestAuditDisabled(t *testing.T) {
	s := testServer(t, func(o *Options) { o.AuditRingSize = -1 })
	rec := postJSON(t, s.Handler(), "/v1/org/search?audit=1", searchBody)
	if rec.Code != http.StatusOK {
		t.Fatalf("search = %d", rec.Code)
	}
	var resp SearchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Audit != nil {
		t.Error("audit trail present with auditing disabled")
	}
	drec := httptest.NewRecorder()
	s.Handler().ServeHTTP(drec, httptest.NewRequest(http.MethodGet, "/debug/search", nil))
	if drec.Code != http.StatusOK || !strings.Contains(drec.Body.String(), `"searches": []`) {
		t.Errorf("debug/search with auditing disabled = %d: %s", drec.Code, drec.Body)
	}
}

// TestOpenMetricsNegotiation: an OpenMetrics Accept header switches the
// exposition format and carries trace exemplars on stage histograms.
func TestOpenMetricsNegotiation(t *testing.T) {
	s := testServer(t, nil)
	h := s.Handler()
	if rec := postJSON(t, h, "/v1/org/search", searchBody); rec.Code != http.StatusOK {
		t.Fatalf("search = %d", rec.Code)
	}

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text; version=1.0.0")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("openmetrics scrape = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "application/openmetrics-text") {
		t.Errorf("Content-Type = %q", ct)
	}
	body := rec.Body.String()
	if !strings.HasSuffix(strings.TrimRight(body, "\n")+"\n", "# EOF\n") {
		t.Error("OpenMetrics exposition missing # EOF terminator")
	}
	if !strings.Contains(body, "# {trace_id=") {
		t.Error("OpenMetrics exposition has no trace exemplars")
	}
	if !strings.Contains(body, `fidelity="`) {
		t.Error("no per-fidelity exemplar on the stage histograms")
	}

	// The classic scrape stays exemplar-free (0.0.4 parsers reject them).
	classic := scrape(t, h)
	if strings.Contains(classic, "# {") {
		t.Error("Prometheus 0.0.4 exposition leaked exemplar syntax")
	}
	if strings.Contains(classic, "# EOF") {
		t.Error("Prometheus 0.0.4 exposition has an OpenMetrics terminator")
	}
}

// TestRuntimeAndProcessMetrics: the Go runtime collector and process start
// time are exposed with sane values.
func TestRuntimeAndProcessMetrics(t *testing.T) {
	s := testServer(t, nil)
	expo := scrape(t, s.Handler())
	if v := metricValue(t, expo, "chipletd_go_goroutines"); v < 1 {
		t.Errorf("chipletd_go_goroutines = %v", v)
	}
	if v := metricValue(t, expo, "chipletd_go_heap_bytes"); v <= 0 {
		t.Errorf("chipletd_go_heap_bytes = %v", v)
	}
	if v := metricValue(t, expo, "chipletd_process_start_time_seconds"); v < 1e9 {
		t.Errorf("chipletd_process_start_time_seconds = %v (not a plausible unix time)", v)
	}
	for _, name := range []string{
		"chipletd_go_gc_pause_seconds_count",
		"chipletd_go_sched_latency_seconds_count",
		"chipletd_otlp_exported_traces_total",
		"chipletd_otlp_queue_depth",
	} {
		if !strings.Contains(expo, name) {
			t.Errorf("metrics missing %s", name)
		}
	}
}

// TestExporterShutdownStopsGoroutines: the exporter's worker must exit on
// Shutdown — the goleak-style guard behind the daemon's clean-drain claim.
func TestExporterShutdownStopsGoroutines(t *testing.T) {
	collector := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer collector.Close()

	before := runtime.NumGoroutine()
	s := testServer(t, func(o *Options) { o.OTLPEndpoint = collector.URL })
	if rec := postJSON(t, s.Handler(), "/v1/thermal/solve", solveBody); rec.Code != http.StatusOK {
		t.Fatalf("solve = %d", rec.Code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Exporter().Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// Bounded wait for goroutine count to return to (near) baseline. The
	// pool workers stay up — they belong to the server, not the exporter —
	// so compare against baseline plus the configured pool size.
	deadline := time.Now().Add(5 * time.Second)
	limit := before + s.opts.Workers + 4 // pool workers, runtime sampler, HTTP keepalives
	for {
		if runtime.NumGoroutine() <= limit {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines = %d, want <= %d after exporter shutdown", runtime.NumGoroutine(), limit)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
