package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sync"
	"time"

	"chiplet25d/internal/obs"
	"chiplet25d/internal/org"
)

// errStreamUnsupported reports a ResponseWriter that cannot flush, which
// SSE requires.
var errStreamUnsupported = errors.New("streaming unsupported by this connection")

// Server-sent-event streaming for long-running requests: ?stream=1 on
// POST /v1/org/search emits live search progress (restart seeds, accepted
// moves, feasible incumbents) fed from the audit ring's notify hook, and on
// POST /v1/batch emits per-item completion events as items finish instead
// of one response after the whole batch. SSE over plain HTTP keeps clients
// trivial (curl -N works) and needs nothing beyond http.Flusher.

// wantStream reports whether the client asked for SSE streaming (?stream=1).
func wantStream(r *http.Request) bool { return r.URL.Query().Get("stream") == "1" }

// sseSink serializes server-sent events onto one response. Writes are
// synchronous under a mutex: audit callbacks fire from search workers while
// the handler goroutine writes item events, and interleaved frames would
// corrupt the stream. After the first write error the sink goes quiet (the
// client is gone; the computation keeps running for other cache waiters).
type sseSink struct {
	mu  sync.Mutex
	w   http.ResponseWriter
	fl  http.Flusher
	err error
}

// newSSESink prepares the response for event streaming. Returns nil when
// the ResponseWriter cannot flush — the caller should fall back to a plain
// JSON response.
func newSSESink(w http.ResponseWriter) *sseSink {
	fl, ok := w.(http.Flusher)
	if !ok {
		return nil
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	return &sseSink{w: w, fl: fl}
}

// send emits one `event:`/`data:` frame with v as JSON. Safe for concurrent
// use; errors are sticky.
func (s *sseSink) send(event string, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	if _, err := s.w.Write([]byte("event: " + event + "\ndata: ")); err != nil {
		s.err = err
		return
	}
	if _, err := s.w.Write(append(b, '\n', '\n')); err != nil {
		s.err = err
		return
	}
	s.fl.Flush()
}

// streamErrorEvent is the `error` event payload.
type streamErrorEvent struct {
	Error     string `json:"error"`
	Status    int    `json:"status"`
	RequestID string `json:"request_id,omitempty"`
}

// streamSearch runs one search with live audit events on the wire:
// `search` events as the optimizer works, then a final `result` (the same
// SearchResponse the plain endpoint returns) or `error` event. A response
// already in the result cache yields the result event immediately with no
// progress events — the trail rode the cached value, nothing is recomputed.
func (s *Server) streamSearch(w http.ResponseWriter, r *http.Request, ctx context.Context, cfg org.Config, exhaustive bool, key string, start time.Time) {
	const endpoint = "org_search"
	sink := newSSESink(w)
	if sink == nil {
		s.fail(w, r, endpoint, http.StatusInternalServerError,
			errStreamUnsupported, start)
		return
	}
	// The status code is already on the wire; the request counter records
	// the computation's outcome instead.
	notify := func(ev org.AuditEvent) {
		if ev.Kind != org.AuditEval {
			// Per-evaluation events are too chatty for the wire (thousands per
			// search); the ring keeps them for ?audit=1 and /debug/search.
			sink.send("search", ev)
		}
	}
	ctx, csp := obs.Start(ctx, "cache.lookup")
	val, hit, err := s.cache.Do(ctx, key, func(runCtx context.Context) (any, error) {
		runCtx = obs.Reattach(runCtx, ctx)
		return s.pool.Do(runCtx, s.searchComputer(cfg, exhaustive, key, notify))
	})
	csp.SetAttr("hit", hit)
	csp.End()
	if err != nil {
		code := errStatus(err)
		s.requests.With(endpoint, statusLabel(code)).Inc()
		sink.send("error", streamErrorEvent{Error: err.Error(), Status: code, RequestID: obs.RequestID(r.Context())})
		return
	}
	if hit {
		s.cacheHits.With(endpoint).Inc()
	} else {
		s.cacheMisses.With(endpoint).Inc()
	}
	resp := *(val.(*SearchResponse))
	resp.Cached = hit
	resp.CacheKey = key
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1e3
	if !wantAudit(r) {
		resp.Audit = nil
	}
	s.requests.With(endpoint, statusLabel(http.StatusOK)).Inc()
	s.solveLatency.Observe(time.Since(start).Seconds())
	sink.send("result", resp)
}
