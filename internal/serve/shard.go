package serve

import (
	"context"
	"encoding/json"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"chiplet25d/internal/obs"
	"chiplet25d/internal/org"
)

// Sharding layer: a static peer list plus rendezvous (highest-random-weight)
// hashing on the engine physics fingerprint decides, for every fingerprint,
// which node "owns" it — no external coordination, no hash ring state, and
// every node computes the same answer from the same peer list. Ownership
// does not gate requests (any node answers anything); it gates the memo
// peer-fetch: a non-owner's engine asks the owner's memo over
// GET /v1/memo/{fingerprint}/{key} before simulating locally, so the
// owner's EngineCache stays hot and the fleet runs each simulation once.
// Fetches are guarded by a short timeout and fall back to the local
// simulation on any failure, so a dead peer degrades to correct-but-cold.

// shardRing is the rendezvous-hash view of the static node set. Nodes are
// base URLs; all nodes must be configured with the same set (each listing
// the others as -peers and itself as -self) for ownership to agree.
type shardRing struct {
	self  string
	nodes []string // deduplicated, sorted; includes self
}

// newShardRing builds the ring from this node's own advertised URL and its
// peer list. Trailing slashes are stripped so "http://a:8080/" and
// "http://a:8080" are one node.
func newShardRing(self string, peers []string) *shardRing {
	seen := make(map[string]bool)
	var nodes []string
	for _, n := range append([]string{self}, peers...) {
		n = strings.TrimRight(strings.TrimSpace(n), "/")
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	return &shardRing{self: strings.TrimRight(strings.TrimSpace(self), "/"), nodes: nodes}
}

// rendezvousScore is the highest-random-weight score of (node, fingerprint).
// FNV-1a over the joined strings is enough: the score only needs to be
// deterministic across nodes and well-mixed across fingerprints.
func rendezvousScore(node, fpHash string) uint64 {
	h := fnv.New64a()
	_, _ = io.WriteString(h, node)
	_, _ = io.WriteString(h, "|")
	_, _ = io.WriteString(h, fpHash)
	return h.Sum64()
}

// owner returns the node owning a fingerprint: the highest rendezvous
// score, ties broken by node name so every node agrees.
func (r *shardRing) owner(fpHash string) string {
	best, bestScore := "", uint64(0)
	for _, n := range r.nodes {
		s := rendezvousScore(n, fpHash)
		if best == "" || s > bestScore || (s == bestScore && n < best) {
			best, bestScore = n, s
		}
	}
	return best
}

// peerFetcher builds the engine-level fetch hook: on a local memo miss for
// a fingerprint owned elsewhere, ask the owner's memo before simulating.
// Returns nil when sharding is disabled.
func (s *Server) peerFetcher() org.PeerFetchFunc {
	if s.ring == nil {
		return nil
	}
	return func(ctx context.Context, fpHash, keyHash string) (org.SimRecord, bool) {
		owner := s.ring.owner(fpHash)
		if owner == s.ring.self {
			// This node is the authority for the fingerprint: compute locally.
			return org.SimRecord{}, false
		}
		start := time.Now()
		ctx, cancel := context.WithTimeout(ctx, s.opts.PeerTimeout)
		defer cancel()
		ctx, sp := obs.Start(ctx, "peer.fetch")
		sp.SetAttr("peer", owner)
		defer sp.End()
		result := "error"
		defer func() {
			sp.SetAttr("result", result)
			s.peerFetches.With(result).Inc()
		}()
		req, err := http.NewRequestWithContext(ctx, http.MethodGet,
			owner+"/v1/memo/"+fpHash+"/"+keyHash, nil)
		if err != nil {
			return org.SimRecord{}, false
		}
		// Propagate trace context so the owner's server span joins this
		// trace; its response Traceparent comes back as a span link.
		if tr := obs.TraceFrom(ctx); tr != nil {
			req.Header.Set("traceparent", tr.Traceparent())
		}
		resp, err := s.peerHTTP.Do(req)
		if err != nil {
			return org.SimRecord{}, false
		}
		defer resp.Body.Close()
		if tid, sid, _, ok := obs.ParseTraceparent(resp.Header.Get("Traceparent")); ok {
			// Recorded as link.* attrs; the OTLP encoder lifts them into a
			// proper span link on export (see internal/obs/export).
			sp.SetAttr("link.trace_id", tid)
			sp.SetAttr("link.span_id", sid)
		}
		if resp.StatusCode != http.StatusOK {
			_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			result = "miss"
			return org.SimRecord{}, false
		}
		var rec org.SimRecord
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&rec); err != nil {
			return org.SimRecord{}, false
		}
		result = "hit"
		s.peerFetchSeconds.Observe(time.Since(start).Seconds())
		return rec, true
	}
}

// engine returns the process-wide engine for cfg with the peer-fetch hook
// attached. All serve-layer computations go through here (never
// s.engines.Get directly) so sharded and standalone deployments share one
// code path; attaching is idempotent and a no-op when sharding is off.
func (s *Server) engine(cfg org.Config) (*org.Engine, error) {
	eng, err := s.engines.Get(cfg)
	if err != nil {
		return nil, err
	}
	if s.peerFetch != nil {
		eng.SetPeerFetch(s.peerFetch)
	}
	return eng, nil
}

// statusLabel renders a status code for the request-counter label.
func statusLabel(code int) string { return strconv.Itoa(code) }

// handleMemo serves GET /v1/memo/{fp}/{key}: a peer's memo fetch. 404 for
// an unknown fingerprint or a non-resident record — both mean "compute it
// yourself" to the caller; neither is an error worth a 5xx.
func (s *Server) handleMemo(w http.ResponseWriter, r *http.Request) {
	const endpoint = "memo_fetch"
	fpHash, keyHash := r.PathValue("fp"), r.PathValue("key")
	writeJSON := func(code int, v any) {
		s.requests.With(endpoint, statusLabel(code)).Inc()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		_ = json.NewEncoder(w).Encode(v)
	}
	eng := s.engines.Lookup(fpHash)
	if eng == nil {
		s.memoServed.With("miss").Inc()
		writeJSON(http.StatusNotFound, errorResponse{Error: "engine fingerprint not resident", RequestID: obs.RequestID(r.Context())})
		return
	}
	rec, ok := eng.MemoFetch(keyHash)
	if !ok {
		s.memoServed.With("miss").Inc()
		writeJSON(http.StatusNotFound, errorResponse{Error: "memo entry not resident", RequestID: obs.RequestID(r.Context())})
		return
	}
	s.memoServed.With("hit").Inc()
	writeJSON(http.StatusOK, rec)
}

// shardEngineJSON describes one resident engine in GET /debug/shard.
type shardEngineJSON struct {
	FingerprintHash string   `json:"fingerprint_hash"`
	Owner           string   `json:"owner,omitempty"`
	Owned           bool     `json:"owned"`
	MemoEntries     int      `json:"memo_entries"`
	MemoKeys        []string `json:"memo_keys,omitempty"`
}

// debugShardResponse is the GET /debug/shard payload: the node's view of
// the ring plus per-engine ownership, so operators (and the two-node smoke
// test) can see where each physics fingerprint lives.
type debugShardResponse struct {
	Enabled bool              `json:"enabled"`
	Self    string            `json:"self,omitempty"`
	Nodes   []string          `json:"nodes,omitempty"`
	Engines []shardEngineJSON `json:"engines"`
}

func (s *Server) handleDebugShard(w http.ResponseWriter, r *http.Request) {
	resp := debugShardResponse{Enabled: s.ring != nil, Engines: []shardEngineJSON{}}
	if s.ring != nil {
		resp.Self = s.ring.self
		resp.Nodes = s.ring.nodes
	}
	wantKeys := r.URL.Query().Get("keys") == "1"
	for _, eng := range s.engines.Resident() {
		ej := shardEngineJSON{
			FingerprintHash: eng.FingerprintHash(),
			MemoEntries:     eng.MemoLen(),
			Owned:           true,
		}
		if s.ring != nil {
			ej.Owner = s.ring.owner(ej.FingerprintHash)
			ej.Owned = ej.Owner == s.ring.self
		}
		if wantKeys {
			ej.MemoKeys = eng.MemoKeyHashes(16)
			sort.Strings(ej.MemoKeys)
		}
		resp.Engines = append(resp.Engines, ej)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp)
}

// ownedEngines counts resident engines whose fingerprint this node owns
// (all of them when sharding is off), for the shard-ownership gauge.
func (s *Server) ownedEngines() int {
	n := 0
	for _, eng := range s.engines.Resident() {
		if s.ring == nil || s.ring.owner(eng.FingerprintHash()) == s.ring.self {
			n++
		}
	}
	return n
}
