package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"chiplet25d/internal/cost"
	"chiplet25d/internal/org"
)

const tcoBody = `{"chiplets": 4, "lane_power_w": 220, "lane_gips": 180}`

func TestTCOEndpoint(t *testing.T) {
	s := testServer(t, nil)
	rec := postJSON(t, s.Handler(), "/v1/cost/tco", tcoBody)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body = %s", rec.Code, rec.Body)
	}
	var resp TCOResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Elab.Feasible || resp.Elab.Reason != cost.ReasonOK {
		t.Fatalf("default 4-chiplet lane should be feasible: %+v", resp.Elab)
	}
	if resp.Fidelity != fidelityAnalytic {
		t.Errorf("fidelity = %q, want %q", resp.Fidelity, fidelityAnalytic)
	}
	if resp.Elab.TCOPerGIPSYear <= 0 {
		t.Errorf("tco_per_gips_year = %g, want positive", resp.Elab.TCOPerGIPSYear)
	}
	if resp.Cached {
		t.Error("first elaboration reported cached = true")
	}
	if !strings.HasPrefix(resp.CacheKey, "tco:") {
		t.Errorf("cache_key = %q, want tco: prefix", resp.CacheKey)
	}

	// The identical request must come back from the cache with the same
	// elaboration, and the monolithic-baseline edge canonicalization must
	// coalesce n=1 requests that differ only in the (ignored) interposer.
	rec2 := postJSON(t, s.Handler(), "/v1/cost/tco", tcoBody)
	var resp2 TCOResponse
	if err := json.Unmarshal(rec2.Body.Bytes(), &resp2); err != nil {
		t.Fatal(err)
	}
	if !resp2.Cached || resp2.CacheKey != resp.CacheKey {
		t.Errorf("repeat request not served from cache (cached=%v key=%q)", resp2.Cached, resp2.CacheKey)
	}
	if resp2.Elab != resp.Elab {
		t.Errorf("cached elaboration differs:\n%+v\n%+v", resp2.Elab, resp.Elab)
	}
	a := postJSON(t, s.Handler(), "/v1/cost/tco", `{"chiplets":1,"lane_power_w":100,"lane_gips":80}`)
	b := postJSON(t, s.Handler(), "/v1/cost/tco", `{"chiplets":1,"interposer_mm":30,"lane_power_w":100,"lane_gips":80}`)
	var ra, rb TCOResponse
	if err := json.Unmarshal(a.Body.Bytes(), &ra); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b.Body.Bytes(), &rb); err != nil {
		t.Fatal(err)
	}
	if ra.CacheKey != rb.CacheKey {
		t.Errorf("monolithic requests with/without interposer_mm should share a key: %q vs %q", ra.CacheKey, rb.CacheKey)
	}
}

func TestTCOEndpointBenchmarkWorkload(t *testing.T) {
	s := testServer(t, nil)
	rec := postJSON(t, s.Handler(), "/v1/cost/tco",
		`{"chiplets": 4, "benchmark": "cholesky", "freq_mhz": 533, "cores": 128}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body = %s", rec.Code, rec.Body)
	}
	var resp TCOResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Elab.LanePowerW <= 0 || resp.Elab.LaneGIPS <= 0 {
		t.Fatalf("benchmark workload not derived: %+v", resp.Elab)
	}
}

// TestTCOThermalCheck: the spatial refinement must run at fidelity
// "spatial", report the predicted peak against the heatsink case limit, and
// reject over-threshold designs with ReasonThermal. An impossible case
// limit forces the rejection deterministically.
func TestTCOThermalCheck(t *testing.T) {
	s := testServer(t, nil)
	body := `{"chiplets": 4, "benchmark": "cholesky", "freq_mhz": 533, "cores": 128,
		"thermal_check": true, "grid_n": 8}`
	rec := postJSON(t, s.Handler(), "/v1/cost/tco", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body = %s", rec.Code, rec.Body)
	}
	var resp TCOResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Fidelity != fidelitySpatial {
		t.Fatalf("fidelity = %q, want %q", resp.Fidelity, fidelitySpatial)
	}
	if resp.PredPeakC <= 45 {
		t.Errorf("pred_peak_c = %g, want above ambient", resp.PredPeakC)
	}
	if resp.ThresholdC != cost.DefaultHeatsink().MaxCaseC {
		t.Errorf("threshold_c = %g, want the heatsink case limit", resp.ThresholdC)
	}
	if resp.PredPeakC <= resp.ThresholdC && !resp.Elab.Feasible {
		t.Errorf("under-threshold design rejected: %+v", resp.Elab)
	}

	// Monolithic cholesky at 1000 MHz / 128 cores draws 224 W — under the
	// 254.8 W analytic heatsink cap, so the analytic stage accepts it — but
	// the spatial surrogate predicts its hotspot peak just over the 85 °C
	// case limit. That is exactly the dark-silicon gap the refinement
	// exists to catch: uniform-spreading arithmetic says yes, the spatial
	// model says no.
	recHot := postJSON(t, s.Handler(), "/v1/cost/tco",
		`{"chiplets": 1, "benchmark": "cholesky", "freq_mhz": 1000, "cores": 128,
		  "thermal_check": true, "grid_n": 8}`)
	if recHot.Code != http.StatusOK {
		t.Fatalf("status = %d, body = %s", recHot.Code, recHot.Body)
	}
	var hotResp TCOResponse
	if err := json.Unmarshal(recHot.Body.Bytes(), &hotResp); err != nil {
		t.Fatal(err)
	}
	if hotResp.Fidelity != fidelitySpatial {
		t.Fatalf("hot design not spatially checked: %+v", hotResp)
	}
	if hotResp.PredPeakC <= hotResp.ThresholdC {
		t.Fatalf("pred_peak_c = %g, expected above the %g °C case limit", hotResp.PredPeakC, hotResp.ThresholdC)
	}
	if hotResp.Elab.Feasible || hotResp.Elab.Reason != cost.ReasonThermal {
		t.Errorf("over-threshold design must carry ReasonThermal: %+v", hotResp.Elab)
	}
	if hotResp.Elab.LanePowerW > hotResp.Elab.MaxLanePowerW {
		t.Errorf("rejection should be thermal, not analytic: %g > %g", hotResp.Elab.LanePowerW, hotResp.Elab.MaxLanePowerW)
	}
}

func TestTCOValidationErrors(t *testing.T) {
	s := testServer(t, nil)
	for _, body := range []string{
		`{"chiplets": 3, "lane_power_w": 100, "lane_gips": 50}`, // not a square
		`{"chiplets": 4}`, // no workload
		`{"chiplets": 4, "lane_power_w": 100, "lane_gips": 50, "benchmark": "canneal"}`,                  // both workloads
		`{"chiplets": 4, "lane_power_w": -5, "lane_gips": 50}`,                                           // negative power
		`{"chiplets": 4, "lane_power_w": 100, "lane_gips": 50, "tech_node": "3nm"}`,                      // unknown node
		`{"chiplets": 4, "lane_power_w": 100, "lane_gips": 50, "pue": 0.5}`,                              // PUE < 1
		`{"chiplets": 4, "lane_power_w": 100, "lane_gips": 50, "thermal_check": true}`,                   // check without benchmark
		`{"chiplets": 9, "benchmark": "cholesky", "freq_mhz": 533, "cores": 128, "thermal_check": true}`, // uncovered class
		`{"chiplets": 4, "benchmark": "cholesky", "freq_mhz": 999, "cores": 128}`,                        // off-table frequency
		`{"chiplets": 4, "unknown_field": 1}`,                                                            // strict decoding
	} {
		rec := postJSON(t, s.Handler(), "/v1/cost/tco", body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("body %s: status = %d, want 400 (%s)", body, rec.Code, rec.Body)
		}
	}
}

// TestSweepExpandTCO: the fleet-sweep cross product expands in axis order
// (benchmarks x nodes x chiplets x interposer x lanes) and each item takes
// fresh pointers.
func TestSweepExpandTCO(t *testing.T) {
	tpl := SweepTemplate{
		TCO:             &TCORequest{LanePowerW: 200, LaneGIPS: 150},
		TechNodes:       []string{"45nm", "7nm"},
		ChipletsPerLane: []int{1, 4, 16},
		InterposerMM:    []float64{20, 30},
		LanesPerServer:  []int{4, 8},
	}
	items, err := tpl.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 3 * 2 * 2; len(items) != want {
		t.Fatalf("expanded %d items, want %d", len(items), want)
	}
	seen := map[string]bool{}
	for i, it := range items {
		if it.TCO == nil {
			t.Fatalf("item %d is not a tco item", i)
		}
		if it.TCO.MaxLanesPerServer == nil {
			t.Fatalf("item %d missing the lanes override", i)
		}
		sig := fmt.Sprintf("%s|%d|%g|%d", it.TCO.TechNode, it.TCO.Chiplets, it.TCO.InterposerMM, *it.TCO.MaxLanesPerServer)
		if seen[sig] {
			t.Fatalf("duplicate expansion %s", sig)
		}
		seen[sig] = true
	}
	// Aliasing check: mutating one item's pointer field must not leak.
	*items[0].TCO.MaxLanesPerServer = 99
	if *items[1].TCO.MaxLanesPerServer == 99 {
		t.Fatal("expanded items alias the lanes override")
	}

	// Mixed-kind axis typos fail loudly.
	bad := SweepTemplate{TCO: &TCORequest{LanePowerW: 1, LaneGIPS: 1}, Alphas: []float64{1}}
	if _, err := bad.Expand(); err == nil {
		t.Error("tco base with a search axis must be rejected")
	}
	bad2 := SweepTemplate{Solve: &SolveRequest{}, TechNodes: []string{"7nm"}}
	if _, err := bad2.Expand(); err == nil {
		t.Error("solve base with a tco axis must be rejected")
	}
}

// TestBatchTCOSweep: a tco sweep through /v1/batch must report every item
// OK, coalesce duplicate keys, and agree bit-for-bit with sequential
// /v1/cost/tco calls on the same expansion.
func TestBatchTCOSweep(t *testing.T) {
	s := testServer(t, nil)
	body := `{"sweep": {
		"tco": {"lane_power_w": 200, "lane_gips": 150},
		"tech_nodes": ["45nm", "28nm"],
		"chiplets_per_lane": [1, 4, 16],
		"interposer_mm": [20, 30]
	}}`
	rec := postJSON(t, s.Handler(), "/v1/batch", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body = %s", rec.Code, rec.Body)
	}
	var resp BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Total != 12 {
		t.Fatalf("total = %d, want 12", resp.Total)
	}
	// n=1 ignores the interposer axis, so its two edge variants coalesce
	// onto one key per node: 12 items, 10 unique keys.
	if resp.UniqueKeys != 10 {
		t.Errorf("unique_keys = %d, want 10 (monolithic edges coalesce)", resp.UniqueKeys)
	}
	if resp.Coalesced != 2 {
		t.Errorf("coalesced = %d, want 2", resp.Coalesced)
	}
	tpl := SweepTemplate{
		TCO:             &TCORequest{LanePowerW: 200, LaneGIPS: 150},
		TechNodes:       []string{"45nm", "28nm"},
		ChipletsPerLane: []int{1, 4, 16},
		InterposerMM:    []float64{20, 30},
	}
	items, err := tpl.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range resp.Items {
		if res.Status != http.StatusOK {
			t.Fatalf("item %d: status %d (%s)", i, res.Status, res.Error)
		}
		if res.Kind != "tco" || res.TCO == nil {
			t.Fatalf("item %d: kind %q, tco %v", i, res.Kind, res.TCO)
		}
		// Sequential ground truth for the same expansion item.
		b, err := json.Marshal(items[i].TCO)
		if err != nil {
			t.Fatal(err)
		}
		seq := postJSON(t, s.Handler(), "/v1/cost/tco", string(b))
		if seq.Code != http.StatusOK {
			t.Fatalf("item %d sequential: status %d (%s)", i, seq.Code, seq.Body)
		}
		var seqResp TCOResponse
		if err := json.Unmarshal(seq.Body.Bytes(), &seqResp); err != nil {
			t.Fatal(err)
		}
		if seqResp.Elab != res.TCO.Elab {
			t.Fatalf("item %d: batch and sequential elaborations differ:\n%+v\n%+v", i, res.TCO.Elab, seqResp.Elab)
		}
		if seqResp.CacheKey != res.TCO.CacheKey {
			t.Fatalf("item %d: batch key %q != sequential key %q", i, res.TCO.CacheKey, seqResp.CacheKey)
		}
	}
}

// TestTCOMetricsAndAudit: fresh elaborations increment the per-fidelity
// counter and land a tco_eval event in the /debug/search audit ring; cache
// hits do neither.
func TestTCOMetricsAndAudit(t *testing.T) {
	s := testServer(t, nil)
	for i := 0; i < 3; i++ { // third request repeats the second: one cache hit
		body := tcoBody
		if i == 0 {
			body = `{"chiplets": 16, "lane_power_w": 150, "lane_gips": 120}`
		}
		if rec := postJSON(t, s.Handler(), "/v1/cost/tco", body); rec.Code != http.StatusOK {
			t.Fatalf("request %d: status = %d, body = %s", i, rec.Code, rec.Body)
		}
	}
	mrec := httptest.NewRecorder()
	s.Handler().ServeHTTP(mrec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if mrec.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", mrec.Code)
	}
	metrics := mrec.Body.String()
	if !strings.Contains(metrics, `chipletd_tco_evals_total{fidelity="analytic"} 2`) {
		t.Errorf("metrics missing 2 fresh analytic evals:\n%s", grepLines(metrics, "tco_evals"))
	}
	recs := s.audits.snapshot()
	found := 0
	for _, rec := range recs {
		if rec.Trail == nil {
			continue
		}
		for _, ev := range rec.Trail.Events {
			if ev.Kind == org.AuditTCOEval {
				found++
			}
		}
	}
	if found != 2 {
		t.Errorf("audit ring holds %d tco_eval events, want 2", found)
	}
}

// grepLines returns the lines of s containing substr (test failure aid).
func grepLines(s, substr string) string {
	var out []string
	for _, ln := range strings.Split(s, "\n") {
		if strings.Contains(ln, substr) {
			out = append(out, ln)
		}
	}
	return strings.Join(out, "\n")
}
