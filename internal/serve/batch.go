package serve

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"chiplet25d/internal/obs"
	"chiplet25d/internal/org"
)

// POST /v1/batch: one request carrying many solve/search/cost items —
// spelled out individually or generated server-side from a compact sweep
// template (a base request plus parameter axes, expanded as a cross
// product). Items are canonicalized to the same normal form the result
// cache keys on, so near-duplicate candidates coalesce onto one
// computation before they ever reach the worker pool: a 64-candidate sweep
// where 16 geometries are thermally identical runs 16 solves, not 64.
// Execution respects the worker hierarchy (intra-batch parallelism is
// bounded by the serve pool; each computation then budgets search workers
// and kernel threads as usual), and with ?stream=1 per-item completion and
// search-progress events stream as SSE instead of one terminal response.

// maxBatchItems bounds one batch after sweep expansion: large enough for
// any plausible study sweep, small enough that a malformed template cannot
// ask for millions of solves.
const maxBatchItems = 1024

// BatchItem is one request in a batch; exactly one kind must be set.
type BatchItem struct {
	Solve  *SolveRequest  `json:"solve,omitempty"`
	Search *SearchRequest `json:"search,omitempty"`
	Cost   *CostRequest   `json:"cost,omitempty"`
	TCO    *TCORequest    `json:"tco,omitempty"`
}

// SweepTemplate generates items server-side: a base request (exactly one of
// Solve/Search/TCO) crossed with every non-empty axis. Solve axes are
// spacing_mm, freq_mhz, cores, benchmarks; search axes are benchmarks,
// alphas, betas, thresholds_c; TCO axes are tech_nodes, chiplets_per_lane,
// interposer_mm, lanes_per_server, benchmarks. Axes of another kind are
// rejected rather than ignored, so a typo'd sweep fails loudly.
type SweepTemplate struct {
	Solve  *SolveRequest  `json:"solve,omitempty"`
	Search *SearchRequest `json:"search,omitempty"`
	TCO    *TCORequest    `json:"tco,omitempty"`

	// Benchmarks applies to all kinds.
	Benchmarks []string `json:"benchmarks,omitempty"`

	// Solve axes.
	SpacingMM []float64 `json:"spacing_mm,omitempty"`
	FreqMHz   []float64 `json:"freq_mhz,omitempty"`
	Cores     []int     `json:"cores,omitempty"`

	// Search axes.
	Alphas      []float64 `json:"alphas,omitempty"`
	Betas       []float64 `json:"betas,omitempty"`
	ThresholdsC []float64 `json:"thresholds_c,omitempty"`

	// TCO axes: the fleet-sweep cross product (node x organization x
	// interposer x chassis packing).
	TechNodes       []string  `json:"tech_nodes,omitempty"`
	ChipletsPerLane []int     `json:"chiplets_per_lane,omitempty"`
	InterposerMM    []float64 `json:"interposer_mm,omitempty"`
	LanesPerServer  []int     `json:"lanes_per_server,omitempty"`
}

// BatchRequest is the POST /v1/batch payload. Items and Sweep compose: the
// expanded sweep is appended after the explicit items.
type BatchRequest struct {
	Items []BatchItem    `json:"items,omitempty"`
	Sweep *SweepTemplate `json:"sweep,omitempty"`
	// Parallelism bounds concurrent unique computations within this batch
	// (default: min(server workers, unique items)). The serve pool still
	// bounds global concurrency; this knob only keeps one huge batch from
	// monopolizing the admission queue.
	Parallelism int `json:"parallelism,omitempty"`
}

// BatchItemResult reports one item. Key is the item's canonical cache key
// (empty for cost items, which are too cheap to coalesce); items that
// coalesced onto an earlier item's computation carry Coalesced=true and the
// shared Key.
type BatchItemResult struct {
	Index     int             `json:"index"`
	Kind      string          `json:"kind"` // solve, search, cost, tco
	Status    int             `json:"status"`
	Error     string          `json:"error,omitempty"`
	Key       string          `json:"key,omitempty"`
	RequestID string          `json:"request_id"`
	Cached    bool            `json:"cached"`
	Coalesced bool            `json:"coalesced"`
	ElapsedMS float64         `json:"elapsed_ms"`
	Solve     *SolveResponse  `json:"solve,omitempty"`
	Search    *SearchResponse `json:"search,omitempty"`
	Cost      *CostResponse   `json:"cost,omitempty"`
	TCO       *TCOResponse    `json:"tco,omitempty"`
}

// BatchResponse reports the whole batch. CoalesceHitRatio is the fraction
// of items that did not need a fresh computation — coalesced intra-batch,
// answered from the result cache, or deduplicated against another request
// in flight.
type BatchResponse struct {
	Items            []BatchItemResult `json:"items"`
	Total            int               `json:"total"`
	UniqueKeys       int               `json:"unique_keys"`
	Coalesced        int               `json:"coalesced"`
	CacheHits        int               `json:"cache_hits"`
	Computed         int               `json:"computed"`
	CoalesceHitRatio float64           `json:"coalesce_hit_ratio"`
	ElapsedMS        float64           `json:"elapsed_ms"`
}

// Expand generates the sweep's items — exported so differential checks and
// clients can reproduce the server-side expansion (and its item order)
// exactly.
func (t *SweepTemplate) Expand() ([]BatchItem, error) {
	bases := 0
	for _, set := range []bool{t.Solve != nil, t.Search != nil, t.TCO != nil} {
		if set {
			bases++
		}
	}
	if bases != 1 {
		return nil, fmt.Errorf("sweep: exactly one of solve, search, or tco must be set, got %d", bases)
	}
	tcoAxes := len(t.TechNodes) + len(t.ChipletsPerLane) + len(t.InterposerMM) + len(t.LanesPerServer)
	switch {
	case t.Solve != nil:
		if len(t.Alphas)+len(t.Betas)+len(t.ThresholdsC) > 0 {
			return nil, fmt.Errorf("sweep: alphas/betas/thresholds_c are search axes, but the base is a solve")
		}
		if tcoAxes > 0 {
			return nil, fmt.Errorf("sweep: tech_nodes/chiplets_per_lane/interposer_mm/lanes_per_server are tco axes, but the base is a solve")
		}
		return t.expandSolve()
	case t.Search != nil:
		if len(t.SpacingMM)+len(t.FreqMHz)+len(t.Cores) > 0 {
			return nil, fmt.Errorf("sweep: spacing_mm/freq_mhz/cores are solve axes, but the base is a search")
		}
		if tcoAxes > 0 {
			return nil, fmt.Errorf("sweep: tech_nodes/chiplets_per_lane/interposer_mm/lanes_per_server are tco axes, but the base is a search")
		}
		return t.expandSearch()
	default:
		if len(t.Alphas)+len(t.Betas)+len(t.ThresholdsC) > 0 {
			return nil, fmt.Errorf("sweep: alphas/betas/thresholds_c are search axes, but the base is a tco")
		}
		if len(t.SpacingMM)+len(t.FreqMHz)+len(t.Cores) > 0 {
			return nil, fmt.Errorf("sweep: spacing_mm/freq_mhz/cores are solve axes, but the base is a tco")
		}
		return t.expandTCO()
	}
}

// cross applies one axis to every item so far: for each existing item and
// each axis value, emit a copy with the value applied. Empty axes are
// identity, so unset axes keep the base request's own value.
func cross[T any](items []BatchItem, axis []T, apply func(BatchItem, T) BatchItem) ([]BatchItem, error) {
	if len(axis) == 0 {
		return items, nil
	}
	out := make([]BatchItem, 0, len(items)*len(axis))
	for _, it := range items {
		for _, v := range axis {
			out = append(out, apply(it, v))
			if len(out) > maxBatchItems {
				return nil, fmt.Errorf("sweep expands beyond the %d-item batch limit", maxBatchItems)
			}
		}
	}
	return out, nil
}

func (t *SweepTemplate) expandSolve() ([]BatchItem, error) {
	items := []BatchItem{{Solve: t.Solve}}
	var err error
	// Each copy takes fresh pointers for the axis values it overrides, so
	// items never alias each other's (or the template's) fields.
	if items, err = cross(items, t.Benchmarks, func(it BatchItem, b string) BatchItem {
		cp := *it.Solve
		cp.Benchmark = b
		return BatchItem{Solve: &cp}
	}); err != nil {
		return nil, err
	}
	if items, err = cross(items, t.SpacingMM, func(it BatchItem, sp float64) BatchItem {
		cp := *it.Solve
		v := sp
		cp.Placement.SpacingMM = &v
		return BatchItem{Solve: &cp}
	}); err != nil {
		return nil, err
	}
	if items, err = cross(items, t.FreqMHz, func(it BatchItem, f float64) BatchItem {
		cp := *it.Solve
		cp.FreqMHz = f
		return BatchItem{Solve: &cp}
	}); err != nil {
		return nil, err
	}
	if items, err = cross(items, t.Cores, func(it BatchItem, c int) BatchItem {
		cp := *it.Solve
		cp.Cores = c
		return BatchItem{Solve: &cp}
	}); err != nil {
		return nil, err
	}
	return items, nil
}

func (t *SweepTemplate) expandSearch() ([]BatchItem, error) {
	items := []BatchItem{{Search: t.Search}}
	var err error
	if items, err = cross(items, t.Benchmarks, func(it BatchItem, b string) BatchItem {
		cp := *it.Search
		cp.Benchmark = b
		cp.CustomBenchmark = nil
		return BatchItem{Search: &cp}
	}); err != nil {
		return nil, err
	}
	if items, err = cross(items, t.Alphas, func(it BatchItem, a float64) BatchItem {
		cp := *it.Search
		v := a
		cp.Alpha = &v
		return BatchItem{Search: &cp}
	}); err != nil {
		return nil, err
	}
	if items, err = cross(items, t.Betas, func(it BatchItem, b float64) BatchItem {
		cp := *it.Search
		v := b
		cp.Beta = &v
		return BatchItem{Search: &cp}
	}); err != nil {
		return nil, err
	}
	if items, err = cross(items, t.ThresholdsC, func(it BatchItem, th float64) BatchItem {
		cp := *it.Search
		v := th
		cp.ThresholdC = &v
		return BatchItem{Search: &cp}
	}); err != nil {
		return nil, err
	}
	return items, nil
}

func (t *SweepTemplate) expandTCO() ([]BatchItem, error) {
	items := []BatchItem{{TCO: t.TCO}}
	var err error
	if items, err = cross(items, t.Benchmarks, func(it BatchItem, b string) BatchItem {
		cp := *it.TCO
		cp.Benchmark = b
		return BatchItem{TCO: &cp}
	}); err != nil {
		return nil, err
	}
	if items, err = cross(items, t.TechNodes, func(it BatchItem, nd string) BatchItem {
		cp := *it.TCO
		cp.TechNode = nd
		return BatchItem{TCO: &cp}
	}); err != nil {
		return nil, err
	}
	if items, err = cross(items, t.ChipletsPerLane, func(it BatchItem, n int) BatchItem {
		cp := *it.TCO
		cp.Chiplets = n
		return BatchItem{TCO: &cp}
	}); err != nil {
		return nil, err
	}
	if items, err = cross(items, t.InterposerMM, func(it BatchItem, e float64) BatchItem {
		cp := *it.TCO
		cp.InterposerMM = e
		return BatchItem{TCO: &cp}
	}); err != nil {
		return nil, err
	}
	if items, err = cross(items, t.LanesPerServer, func(it BatchItem, l int) BatchItem {
		cp := *it.TCO
		v := l
		cp.MaxLanesPerServer = &v
		return BatchItem{TCO: &cp}
	}); err != nil {
		return nil, err
	}
	return items, nil
}

// batchWork is one resolved item: its canonical identity plus the
// computation to run on a cache miss. Items whose resolution failed carry
// only err (reported per-item as 400; the rest of the batch still runs).
type batchWork struct {
	index    int
	kind     string
	key      string
	computer func(context.Context) (any, error)
	direct   bool // run inline, no cache/pool (cost items)
	err      error
}

// resolveBatchItem canonicalizes one item. notify receives live search
// audit events (nil outside SSE mode).
func (s *Server) resolveBatchItem(idx int, it BatchItem, notify func(org.AuditEvent)) batchWork {
	set := 0
	for _, p := range []bool{it.Solve != nil, it.Search != nil, it.Cost != nil, it.TCO != nil} {
		if p {
			set++
		}
	}
	if set != 1 {
		return batchWork{index: idx, err: fmt.Errorf("item %d: exactly one of solve, search, cost, or tco must be set", idx)}
	}
	switch {
	case it.Solve != nil:
		sp, key, err := s.resolveSolve(it.Solve)
		if err != nil {
			return batchWork{index: idx, kind: "solve", err: fmt.Errorf("item %d: %w", idx, err)}
		}
		return batchWork{index: idx, kind: "solve", key: key, computer: s.solveComputer(sp)}
	case it.Search != nil:
		cfg, key, err := s.resolveSearch(it.Search)
		if err != nil {
			return batchWork{index: idx, kind: "search", err: fmt.Errorf("item %d: %w", idx, err)}
		}
		return batchWork{index: idx, kind: "search", key: key, computer: s.searchComputer(cfg, it.Search.Exhaustive, key, notify)}
	case it.TCO != nil:
		// TCO items are keyed (not direct like cost items): a fleet sweep
		// repeats many identical elaborations across its cross product, and
		// keying them buys intra-batch coalescing, the result cache, and
		// bit-identity with sequential /v1/cost/tco calls.
		sp, key, err := s.resolveTCO(it.TCO)
		if err != nil {
			return batchWork{index: idx, kind: "tco", err: fmt.Errorf("item %d: %w", idx, err)}
		}
		return batchWork{index: idx, kind: "tco", key: key, computer: s.tcoComputer(sp, key)}
	default:
		req := it.Cost
		return batchWork{index: idx, kind: "cost", direct: true, computer: func(context.Context) (any, error) {
			resp, err := costCompute(req)
			if err != nil {
				return nil, fmt.Errorf("item %d: %w", idx, err)
			}
			return resp, nil
		}}
	}
}

// groupOutcome is the shared result of one unique computation, fanned out
// to every member of its coalescing group.
type groupOutcome struct {
	val any
	hit bool
	err error
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	const endpoint = "batch"
	start := time.Now()
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	defer cancel()
	var req BatchRequest
	if err := decodeJSON(r, &req); err != nil {
		s.fail(w, r, endpoint, http.StatusBadRequest, err, start)
		return
	}
	items := req.Items
	if req.Sweep != nil {
		expanded, err := req.Sweep.Expand()
		if err != nil {
			s.fail(w, r, endpoint, http.StatusBadRequest, err, start)
			return
		}
		items = append(items, expanded...)
	}
	if len(items) == 0 {
		s.fail(w, r, endpoint, http.StatusBadRequest, fmt.Errorf("batch has no items (set items or sweep)"), start)
		return
	}
	if len(items) > maxBatchItems {
		s.fail(w, r, endpoint, http.StatusBadRequest,
			fmt.Errorf("batch has %d items, limit %d", len(items), maxBatchItems), start)
		return
	}
	s.batchItems.Add(float64(len(items)))
	batchID := obs.RequestID(ctx)

	var sink *sseSink
	if wantStream(r) {
		if sink = newSSESink(w); sink == nil {
			s.fail(w, r, endpoint, http.StatusInternalServerError, errStreamUnsupported, start)
			return
		}
	}

	// Resolve every item to its canonical form, then group by key: one
	// computation per unique key, results fanned out to all members.
	work := make([]batchWork, len(items))
	for i, it := range items {
		var notify func(org.AuditEvent)
		if sink != nil {
			idx := i
			notify = func(ev org.AuditEvent) {
				if ev.Kind != org.AuditEval {
					sink.send("search", batchSearchEvent{Item: idx, Event: ev})
				}
			}
		}
		work[i] = s.resolveBatchItem(i, it, notify)
	}
	groups := make(map[string][]int) // key -> member indices, first is representative
	var order []string               // first-seen order, for deterministic execution
	directs := 0
	for i, bw := range work {
		if bw.err != nil {
			continue
		}
		if bw.direct {
			directs++
			continue
		}
		if _, ok := groups[bw.key]; !ok {
			order = append(order, bw.key)
		}
		groups[bw.key] = append(groups[bw.key], i)
	}

	parallel := req.Parallelism
	if parallel <= 0 {
		parallel = s.opts.Workers
	}
	// Cap at admission capacity so one batch cannot self-inflict 503s by
	// flooding its own pool queue.
	if maxP := s.opts.Workers + s.opts.QueueDepth; parallel > maxP {
		parallel = maxP
	}
	if parallel > len(order) && len(order) > 0 {
		parallel = len(order)
	}

	results := make([]BatchItemResult, len(items))
	outcomes := make(map[string]*groupOutcome, len(order))
	var (
		mu  sync.Mutex
		wg  sync.WaitGroup
		sem = make(chan struct{}, max(parallel, 1))
	)
	for _, key := range order {
		key := key
		rep := work[groups[key][0]]
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			gctx, gsp := obs.Start(ctx, "batch.item")
			gsp.SetAttr("kind", rep.kind)
			gsp.SetAttr("key", key)
			gsp.SetAttr("members", len(groups[key]))
			val, hit, err := s.cache.Do(gctx, key, func(runCtx context.Context) (any, error) {
				runCtx = obs.Reattach(runCtx, gctx)
				return s.pool.Do(runCtx, rep.computer)
			})
			gsp.SetAttr("hit", hit)
			gsp.End()
			out := &groupOutcome{val: val, hit: hit, err: err}
			mu.Lock()
			outcomes[key] = out
			mu.Unlock()
			if sink != nil {
				for _, idx := range groups[key] {
					sink.send("item", itemResult(work[idx], out, groups[key][0], batchID, start))
				}
			}
		}()
	}
	// Cost items run inline: they are microseconds of arithmetic, and
	// routing them through the pool would only add queueing latency.
	for i := range work {
		if work[i].direct && work[i].err == nil {
			val, err := work[i].computer(ctx)
			mu.Lock()
			outcomes["direct:"+fmt.Sprint(i)] = &groupOutcome{val: val, err: err}
			mu.Unlock()
		}
	}
	wg.Wait()

	coalesced, cacheHits, computed := 0, 0, 0
	for i, bw := range work {
		switch {
		case bw.err != nil:
			results[i] = BatchItemResult{
				Index: i, Kind: bw.kind, Status: http.StatusBadRequest,
				Error: bw.err.Error(), RequestID: fmt.Sprintf("%s/%d", batchID, i),
			}
			if sink != nil {
				sink.send("item", results[i])
			}
		case bw.direct:
			results[i] = itemResult(bw, outcomes["direct:"+fmt.Sprint(i)], i, batchID, start)
			if sink != nil {
				sink.send("item", results[i])
			}
		default:
			out := outcomes[bw.key]
			rep := groups[bw.key][0]
			results[i] = itemResult(bw, out, rep, batchID, start)
			if i != rep {
				coalesced++
			} else if out.err == nil {
				if out.hit {
					cacheHits++
				} else {
					computed++
				}
			}
		}
	}
	s.batchCoalesced.Add(float64(coalesced))
	resp := BatchResponse{
		Items:      results,
		Total:      len(items),
		UniqueKeys: len(order),
		Coalesced:  coalesced,
		CacheHits:  cacheHits,
		Computed:   computed,
		ElapsedMS:  float64(time.Since(start).Microseconds()) / 1e3,
	}
	if n := len(items) - directs; n > 0 {
		resp.CoalesceHitRatio = 1 - float64(computed)/float64(n)
	}
	if sink != nil {
		s.requests.With(endpoint, statusLabel(http.StatusOK)).Inc()
		resp.Items = nil // every item already streamed
		sink.send("done", resp)
		return
	}
	s.finish(w, endpoint, http.StatusOK, resp, start)
}

// batchSearchEvent wraps a live search audit event with the batch item
// index it belongs to (SSE mode).
type batchSearchEvent struct {
	Item  int            `json:"item"`
	Event org.AuditEvent `json:"event"`
}

// itemResult renders one member's view of its group's shared outcome.
func itemResult(bw batchWork, out *groupOutcome, rep int, batchID string, start time.Time) BatchItemResult {
	res := BatchItemResult{
		Index:     bw.index,
		Kind:      bw.kind,
		Key:       bw.key,
		RequestID: fmt.Sprintf("%s/%d", batchID, bw.index),
		Coalesced: !bw.direct && bw.index != rep,
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1e3,
	}
	if out == nil || out.err != nil {
		var err error
		if out == nil {
			err = context.Canceled
		} else {
			err = out.err
		}
		res.Status = errStatus(err)
		res.Error = err.Error()
		return res
	}
	res.Status = http.StatusOK
	res.Cached = out.hit
	switch v := out.val.(type) {
	case *SolveResponse:
		cp := *v
		cp.Cached = out.hit
		cp.CacheKey = bw.key
		res.Solve = &cp
	case *SearchResponse:
		cp := *v
		cp.Cached = out.hit
		cp.CacheKey = bw.key
		cp.Audit = nil // trails are per-batch noise; use ?audit=1 on the single endpoint
		res.Search = &cp
	case *CostResponse:
		res.Cost = v
	case *TCOResponse:
		cp := *v
		cp.Cached = out.hit
		cp.CacheKey = bw.key
		res.TCO = &cp
	}
	return res
}
