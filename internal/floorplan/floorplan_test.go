package floorplan

import (
	"math"
	"testing"
	"testing/quick"

	"chiplet25d/internal/geom"
)

func TestSingleChip(t *testing.T) {
	p := SingleChip()
	if !p.Is2D() || p.W != ChipEdgeMM || len(p.Chiplets) != 1 {
		t.Fatalf("unexpected single chip placement: %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUniformGridGeometry(t *testing.T) {
	p, err := UniformGrid(4, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	// Edge = 4*4.5 + 3*2 + 2*1 = 26 mm.
	if math.Abs(p.W-26) > 1e-9 {
		t.Errorf("interposer edge = %v, want 26", p.W)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Chiplets) != 16 {
		t.Fatalf("chiplet count = %d", len(p.Chiplets))
	}
	// Total silicon area preserved: 16 chiplets of (18/4)² = 324 mm².
	area := 0.0
	for _, c := range p.Chiplets {
		area += c.Area()
	}
	if math.Abs(area-324) > 1e-6 {
		t.Errorf("total chiplet area = %v, want 324", area)
	}
}

func TestUniformGridRejectsBadArgs(t *testing.T) {
	if _, err := UniformGrid(0, 1); err == nil {
		t.Errorf("expected error for r=0")
	}
	if _, err := UniformGrid(2, -1); err == nil {
		t.Errorf("expected error for negative spacing")
	}
}

func TestUniformGridForInterposer(t *testing.T) {
	p, err := UniformGridForInterposer(3, 30)
	if err != nil {
		t.Fatal(err)
	}
	// spacing = (30 - 2 - 18)/2 = 5 mm
	if math.Abs(p.S3-5) > 1e-9 {
		t.Errorf("derived spacing = %v, want 5", p.S3)
	}
	if math.Abs(p.W-30) > 1e-9 {
		t.Errorf("interposer edge = %v, want 30", p.W)
	}
	// Too small an interposer must error.
	if _, err := UniformGridForInterposer(2, 19); err == nil {
		t.Errorf("expected error for infeasible interposer size")
	}
}

func TestPaperOrg4MatchesEq9(t *testing.T) {
	p, err := PaperOrg(4, 0, 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Eq. (9) with r=2, s1=0: w = 2*9 + 6 + 2 = 26.
	if math.Abs(p.W-26) > 1e-9 {
		t.Errorf("interposer edge = %v, want 26", p.W)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPaperOrg4RejectsNonzeroS1S2(t *testing.T) {
	if _, err := PaperOrg(4, 1, 0, 6); err == nil {
		t.Errorf("expected error for s1 != 0 in 4-chiplet org")
	}
	if _, err := PaperOrg(4, 0, 1, 6); err == nil {
		t.Errorf("expected error for s2 != 0 in 4-chiplet org")
	}
}

func TestPaperOrg16MatchesEq9(t *testing.T) {
	s1, s2, s3 := 2.0, 1.5, 3.0
	p, err := PaperOrg(16, s1, s2, s3)
	if err != nil {
		t.Fatal(err)
	}
	want := 4*4.5 + 2*s1 + s3 + 2*GuardBandMM
	if math.Abs(p.W-want) > 1e-9 {
		t.Errorf("interposer edge = %v, want %v (Eq. 9)", p.W, want)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPaperOrg16Eq10Enforced(t *testing.T) {
	// 2*s1 + s3 - 2*s2 = 2*1 + 1 - 2*2 = -1 < 0: must be rejected.
	if _, err := PaperOrg(16, 1, 2, 1); err == nil {
		t.Errorf("expected Eq. (10) violation to be rejected")
	}
}

func TestPaperOrg16Symmetry(t *testing.T) {
	p, err := PaperOrg(16, 1.5, 1.0, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	// Axial symmetry: reflecting every chiplet about the vertical and
	// horizontal center lines must map the chiplet set onto itself.
	c := p.W / 2
	for _, mirror := range []func(geom.Rect) geom.Rect{
		func(r geom.Rect) geom.Rect { return geom.Rect{X: 2*c - r.MaxX(), Y: r.Y, W: r.W, H: r.H} },
		func(r geom.Rect) geom.Rect { return geom.Rect{X: r.X, Y: 2*c - r.MaxY(), W: r.W, H: r.H} },
		// Diagonal symmetry: swap x and y.
		func(r geom.Rect) geom.Rect { return geom.Rect{X: r.Y, Y: r.X, W: r.H, H: r.W} },
	} {
		for _, r := range p.Chiplets {
			m := mirror(r)
			found := false
			for _, o := range p.Chiplets {
				if math.Abs(o.X-m.X) < 1e-9 && math.Abs(o.Y-m.Y) < 1e-9 {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("mirrored chiplet %v not found in placement", m)
			}
		}
	}
}

// Property: any valid (s1, s2, s3) combination on the 0.5 mm grid yields a
// placement with disjoint chiplets inside the guard band.
func TestPaperOrg16ValidityProperty(t *testing.T) {
	f := func(a, b, c uint8) bool {
		s1 := float64(a%12) * 0.5
		s3 := float64(c%12) * 0.5
		s2 := float64(b%12) * 0.5
		if 2*s1+s3-2*s2 < 0 {
			s2 = (2*s1 + s3) / 2 // make it feasible
		}
		p, err := PaperOrg(16, s1, s2, s3)
		if err != nil {
			return false
		}
		if p.W > MaxInterposerEdgeMM {
			return true // Eq. (7) handled by Validate in the optimizer; skip
		}
		return p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPaperOrgForInterposerDerivesS3(t *testing.T) {
	p, err := PaperOrgForInterposer(16, 30, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// S = 30 - 18 - 2 = 10; s3 = 10 - 2*2 = 6.
	if math.Abs(p.S3-6) > 1e-9 {
		t.Errorf("derived s3 = %v, want 6", p.S3)
	}
	if math.Abs(p.W-30) > 1e-9 {
		t.Errorf("interposer edge = %v, want 30", p.W)
	}
	if _, err := PaperOrgForInterposer(16, 30, 6, 0); err == nil {
		t.Errorf("expected error when 2*s1 exceeds the spacing span")
	}
	p4, err := PaperOrgForInterposer(4, 26, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p4.S3-6) > 1e-9 {
		t.Errorf("4-chiplet derived s3 = %v, want 6", p4.S3)
	}
}

func TestSpacingSpan(t *testing.T) {
	if got := SpacingSpan(16, 30); math.Abs(got-10) > 1e-9 {
		t.Errorf("SpacingSpan(16, 30) = %v, want 10", got)
	}
	if got := SpacingSpan(4, 26); math.Abs(got-6) > 1e-9 {
		t.Errorf("SpacingSpan(4, 26) = %v, want 6", got)
	}
	if got := SpacingSpan(4, 19); got >= 0 {
		t.Errorf("SpacingSpan on infeasible edge should be negative, got %v", got)
	}
}

func TestValidateRejectsOversizeInterposer(t *testing.T) {
	p, err := UniformGrid(2, 40) // edge = 18 + 40 + 2 = 60 > 50
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err == nil {
		t.Errorf("expected Eq. (7) violation for 60 mm interposer")
	}
}

func TestCoresPartitionAndCount(t *testing.T) {
	for _, r := range []int{1, 2, 4, 8, 16} {
		var p Placement
		var err error
		if r == 1 {
			p = SingleChip()
		} else {
			p, err = UniformGrid(r, 1.0)
			if err != nil {
				t.Fatal(err)
			}
		}
		cores, err := p.Cores()
		if err != nil {
			t.Fatalf("r=%d: %v", r, err)
		}
		if len(cores) != NumCores {
			t.Fatalf("r=%d: %d cores, want %d", r, len(cores), NumCores)
		}
		// Every core must lie inside its chiplet; per-chiplet counts equal.
		counts := make(map[int]int)
		for _, c := range cores {
			counts[c.Chiplet]++
			if !p.Chiplets[c.Chiplet].Contains(c.Rect) {
				t.Fatalf("r=%d: core (%d,%d) outside chiplet %d", r, c.Col, c.Row, c.Chiplet)
			}
		}
		want := NumCores / (r * r)
		for ch, n := range counts {
			if n != want {
				t.Fatalf("r=%d: chiplet %d has %d cores, want %d", r, ch, n, want)
			}
		}
	}
}

func TestCoresRejectsNonDividingGrid(t *testing.T) {
	p, err := UniformGrid(3, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Cores(); err == nil {
		t.Errorf("expected error: 3 does not divide 16")
	}
	if p.CoreMapSupported() {
		t.Errorf("CoreMapSupported should be false for r=3")
	}
}

func TestCoresDoNotOverlap(t *testing.T) {
	p, err := PaperOrg(16, 1, 0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	cores, err := p.Cores()
	if err != nil {
		t.Fatal(err)
	}
	rects := make([]geom.Rect, len(cores))
	for i, c := range cores {
		rects[i] = c.Rect
	}
	if i, j, ov := geom.AnyOverlap(rects); ov {
		t.Fatalf("cores %d and %d overlap", i, j)
	}
}

func TestSnapToStep(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0.3, 0.5}, {0.24, 0}, {1.75, 2}, {-0.3, -0.5},
	}
	for _, c := range cases {
		if got := SnapToStep(c.in); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("SnapToStep(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}
