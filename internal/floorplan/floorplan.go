// Package floorplan models the physical organization of the paper's 256-core
// system: the monolithic 18mm x 18mm chip, and its 2.5D decompositions into
// r x r chiplets placed on a passive silicon interposer with guard bands and
// configurable inter-chiplet spacings (Fig. 4(a)), plus the package layer
// stack of Table I used by the thermal solver.
//
// Plan-view geometry is in millimeters; layer thicknesses are in meters
// (fields are suffixed accordingly).
package floorplan

import (
	"fmt"
	"math"

	"chiplet25d/internal/geom"
)

// Constants of the example 256-core system (Sec. III-A).
const (
	// ChipEdgeMM is the edge length of the baseline monolithic chip.
	ChipEdgeMM = 18.0
	// CoresPerEdge is the logical core mesh dimension (16 x 16 = 256 cores).
	CoresPerEdge = 16
	// NumCores is the total core count.
	NumCores = CoresPerEdge * CoresPerEdge
	// CorePitchMM is the edge of one core+L2 tile (1.28 mm² ≈ 1.13 mm x
	// 1.13 mm in the paper; we use the exact chip/16 pitch so tiles fill the
	// chip).
	CorePitchMM = ChipEdgeMM / CoresPerEdge
	// GuardBandMM is the guard band l_g along each interposer edge.
	GuardBandMM = 1.0
	// MaxInterposerEdgeMM is the Eq. (7) limit from the stepper exposure
	// field.
	MaxInterposerEdgeMM = 50.0
	// SpacingStepMM is the placement granularity used throughout the paper.
	SpacingStepMM = 0.5
)

// Placement is a concrete plan-view organization: either the 2D single chip
// (R == 1) or R x R chiplets on an interposer. Chiplet rectangles are in
// interposer coordinates (origin at the interposer's lower-left corner).
type Placement struct {
	// R is the number of chiplets per row/column; 1 denotes the 2D baseline.
	R int
	// ChipletW and ChipletH are the chiplet dimensions in mm (Eq. (8)).
	ChipletW, ChipletH float64
	// W and H are the interposer dimensions in mm (chip dimensions for the
	// 2D baseline).
	W, H float64
	// S1, S2, S3 are the paper's spacings where applicable; for uniform
	// placements S3 carries the uniform spacing and S1 = S2 = 0 record-wise.
	S1, S2, S3 float64
	// Chiplets are the chiplet outlines. For R == 1 this is the single chip.
	Chiplets []geom.Rect
}

// NumChiplets returns the chiplet count (1 for the 2D baseline).
func (p Placement) NumChiplets() int { return p.R * p.R }

// Is2D reports whether this is the monolithic baseline.
func (p Placement) Is2D() bool { return p.R == 1 }

// SingleChip returns the 2D baseline placement: the 18mm x 18mm chip.
func SingleChip() Placement {
	return Placement{
		R:        1,
		ChipletW: ChipEdgeMM,
		ChipletH: ChipEdgeMM,
		W:        ChipEdgeMM,
		H:        ChipEdgeMM,
		Chiplets: []geom.Rect{{X: 0, Y: 0, W: ChipEdgeMM, H: ChipEdgeMM}},
	}
}

// chipletEdge returns the chiplet edge length for an r x r split of the
// baseline chip (Eq. (8)).
func chipletEdge(r int) float64 { return ChipEdgeMM / float64(r) }

// UniformGrid places r x r chiplets in a matrix with the given uniform
// spacing (mm) between adjacent chiplets and a guard band on every edge
// (Sec. III-C / Fig. 5). r = 1 with spacing 0 degenerates to the single
// chip mounted on an interposer-sized footprint.
func UniformGrid(r int, spacing float64) (Placement, error) {
	if r < 1 {
		return Placement{}, fmt.Errorf("floorplan: chiplet grid r must be >= 1, got %d", r)
	}
	if spacing < 0 {
		return Placement{}, fmt.Errorf("floorplan: spacing must be non-negative, got %g", spacing)
	}
	wc := chipletEdge(r)
	edge := float64(r)*wc + float64(r-1)*spacing + 2*GuardBandMM
	p := Placement{
		R: r, ChipletW: wc, ChipletH: wc,
		W: edge, H: edge,
		S3: spacing,
	}
	for j := 0; j < r; j++ {
		for i := 0; i < r; i++ {
			x := GuardBandMM + float64(i)*(wc+spacing)
			y := GuardBandMM + float64(j)*(wc+spacing)
			p.Chiplets = append(p.Chiplets, geom.Rect{X: x, Y: y, W: wc, H: wc})
		}
	}
	return p, nil
}

// UniformGridForInterposer places r x r chiplets with uniform spacing chosen
// so the square interposer has the given edge length (Fig. 3(b) sweeps).
func UniformGridForInterposer(r int, interposerEdge float64) (Placement, error) {
	if r < 2 {
		return Placement{}, fmt.Errorf("floorplan: uniform interposer grid needs r >= 2, got %d", r)
	}
	wc := chipletEdge(r)
	spacing := (interposerEdge - 2*GuardBandMM - float64(r)*wc) / float64(r-1)
	if spacing < -geom.Eps {
		return Placement{}, fmt.Errorf("floorplan: interposer edge %.2f mm too small for %dx%d chiplets",
			interposerEdge, r, r)
	}
	if spacing < 0 {
		spacing = 0
	}
	return UniformGrid(r, spacing)
}

// PaperOrg builds the paper's parameterized organization of Fig. 4(a).
//
//   - n == 4 (r=2): a 2x2 grid with central gap s3 in both axes; s1 and s2
//     must be zero (Table II).
//   - n == 16 (r=4): the 12 perimeter chiplets sit on a frame with column
//     and row gaps [s1, s3, s1]; the 4 center chiplets form a 2x2 block
//     centered on the interposer with gap s2 (both axes). Eq. (10)
//     (2*s1 + s3 >= 2*s2) keeps the center block clear of the frame.
//
// The interposer edge follows Eq. (9): r*w_c + 2*s1 + s3 + 2*l_g.
func PaperOrg(n int, s1, s2, s3 float64) (Placement, error) {
	switch n {
	case 4:
		if s1 != 0 || s2 != 0 {
			return Placement{}, fmt.Errorf("floorplan: 4-chiplet organization requires s1 = s2 = 0, got s1=%g s2=%g", s1, s2)
		}
		if s3 < 0 {
			return Placement{}, fmt.Errorf("floorplan: s3 must be non-negative, got %g", s3)
		}
		p, err := UniformGrid(2, s3)
		if err != nil {
			return Placement{}, err
		}
		return p, nil
	case 16:
		return paperOrg16(s1, s2, s3)
	default:
		return Placement{}, fmt.Errorf("floorplan: paper organizations support n in {4, 16}, got %d", n)
	}
}

func paperOrg16(s1, s2, s3 float64) (Placement, error) {
	if s1 < 0 || s2 < 0 || s3 < 0 {
		return Placement{}, fmt.Errorf("floorplan: spacings must be non-negative, got s1=%g s2=%g s3=%g", s1, s2, s3)
	}
	if 2*s1+s3-2*s2 < -geom.Eps {
		return Placement{}, fmt.Errorf("floorplan: Eq.(10) violated: 2*s1+s3-2*s2 = %g < 0", 2*s1+s3-2*s2)
	}
	const r = 4
	wc := chipletEdge(r)
	edge := float64(r)*wc + 2*s1 + s3 + 2*GuardBandMM // Eq. (9)
	p := Placement{
		R: r, ChipletW: wc, ChipletH: wc,
		W: edge, H: edge,
		S1: s1, S2: s2, S3: s3,
	}
	// Frame coordinates for the perimeter chiplets: gaps [s1, s3, s1].
	frame := [4]float64{
		GuardBandMM,
		GuardBandMM + wc + s1,
		GuardBandMM + 2*wc + s1 + s3,
		GuardBandMM + 3*wc + 2*s1 + s3,
	}
	// Centered coordinates for the inner 2x2 block with gap s2.
	c := edge / 2
	inner := [2]float64{c - wc - s2/2, c + s2/2}
	for j := 0; j < r; j++ {
		for i := 0; i < r; i++ {
			var x, y float64
			if i >= 1 && i <= 2 && j >= 1 && j <= 2 {
				x, y = inner[i-1], inner[j-1]
			} else {
				x, y = frame[i], frame[j]
			}
			p.Chiplets = append(p.Chiplets, geom.Rect{X: x, Y: y, W: wc, H: wc})
		}
	}
	return p, nil
}

// PaperOrgForInterposer builds a 16-chiplet organization whose interposer
// edge is fixed; s3 is derived from Eq. (9): s3 = S - 2*s1 where
// S = edge - r*w_c - 2*l_g. This is the constrained space the greedy search
// walks within one cost bucket.
func PaperOrgForInterposer(n int, interposerEdge, s1, s2 float64) (Placement, error) {
	switch n {
	case 4:
		s3 := interposerEdge - 2*chipletEdge(2) - 2*GuardBandMM
		if s3 < -geom.Eps {
			return Placement{}, fmt.Errorf("floorplan: interposer edge %.2f mm too small for 4 chiplets", interposerEdge)
		}
		if s3 < 0 {
			s3 = 0
		}
		return PaperOrg(4, 0, 0, s3)
	case 16:
		s := interposerEdge - 4*chipletEdge(4) - 2*GuardBandMM
		if s < -geom.Eps {
			return Placement{}, fmt.Errorf("floorplan: interposer edge %.2f mm too small for 16 chiplets", interposerEdge)
		}
		s3 := s - 2*s1
		if s3 < -geom.Eps {
			return Placement{}, fmt.Errorf("floorplan: s1=%g leaves negative s3 for interposer edge %.2f", s1, interposerEdge)
		}
		if s3 < 0 {
			s3 = 0
		}
		return PaperOrg(16, s1, s2, s3)
	default:
		return Placement{}, fmt.Errorf("floorplan: paper organizations support n in {4, 16}, got %d", n)
	}
}

// SpacingSpan returns S = 2*s1 + s3 available between chiplet columns for
// the given chiplet count and interposer edge (negative if infeasible).
func SpacingSpan(n int, interposerEdge float64) float64 {
	r := 2
	if n == 16 {
		r = 4
	}
	return interposerEdge - float64(r)*chipletEdge(r) - 2*GuardBandMM
}

// Validate checks the geometric invariants: chiplets pairwise disjoint,
// inside the guard-banded interposer region, and the interposer within the
// Eq. (7) stepper limit.
func (p Placement) Validate() error {
	if p.W > MaxInterposerEdgeMM+geom.Eps || p.H > MaxInterposerEdgeMM+geom.Eps {
		return fmt.Errorf("floorplan: interposer %.2fx%.2f mm exceeds %.0f mm limit (Eq. 7)",
			p.W, p.H, MaxInterposerEdgeMM)
	}
	if len(p.Chiplets) != p.NumChiplets() {
		return fmt.Errorf("floorplan: have %d chiplet rects, want %d", len(p.Chiplets), p.NumChiplets())
	}
	inner := geom.Rect{X: 0, Y: 0, W: p.W, H: p.H}
	if !p.Is2D() {
		inner = geom.Rect{
			X: GuardBandMM - geom.Eps, Y: GuardBandMM - geom.Eps,
			W: p.W - 2*GuardBandMM + 2*geom.Eps, H: p.H - 2*GuardBandMM + 2*geom.Eps,
		}
	}
	for i, c := range p.Chiplets {
		if !inner.Contains(c) {
			return fmt.Errorf("floorplan: chiplet %d %v outside guard-banded region %v", i, c, inner)
		}
	}
	if i, j, ov := geom.AnyOverlap(p.Chiplets); ov {
		return fmt.Errorf("floorplan: chiplets %d and %d overlap: %v vs %v", i, j, p.Chiplets[i], p.Chiplets[j])
	}
	return nil
}

// Core identifies one core tile: its logical mesh coordinates, owning
// chiplet, and physical outline in interposer coordinates.
type Core struct {
	// Col and Row are the logical 16x16 mesh coordinates (preserved across
	// chiplet splits: the mesh is the same, links between chiplets just get
	// longer).
	Col, Row int
	// Chiplet is the index into Placement.Chiplets that contains this core.
	Chiplet int
	// Rect is the physical tile outline in mm, interposer coordinates.
	Rect geom.Rect
}

// CoreMapSupported reports whether the placement's chiplet grid divides the
// 16x16 core mesh evenly (r | 16), which is required to build a core map.
func (p Placement) CoreMapSupported() bool { return CoresPerEdge%p.R == 0 }

// Cores returns the 256 core tiles of the placement. The logical 16x16 mesh
// is partitioned into r x r blocks of (16/r)² cores, each block living on
// one chiplet; tiles are laid out contiguously within their chiplet.
// Returns an error if r does not divide 16.
func (p Placement) Cores() ([]Core, error) {
	if !p.CoreMapSupported() {
		return nil, fmt.Errorf("floorplan: %dx%d chiplet grid does not divide the %dx%d core mesh",
			p.R, p.R, CoresPerEdge, CoresPerEdge)
	}
	per := CoresPerEdge / p.R // cores per chiplet edge
	pitchW := p.ChipletW / float64(per)
	pitchH := p.ChipletH / float64(per)
	cores := make([]Core, 0, NumCores)
	for row := 0; row < CoresPerEdge; row++ {
		for col := 0; col < CoresPerEdge; col++ {
			ci, cj := col/per, row/per
			chiplet := cj*p.R + ci
			base := p.Chiplets[chiplet]
			lx, ly := col%per, row%per
			cores = append(cores, Core{
				Col: col, Row: row, Chiplet: chiplet,
				Rect: geom.Rect{
					X: base.X + float64(lx)*pitchW,
					Y: base.Y + float64(ly)*pitchH,
					W: pitchW, H: pitchH,
				},
			})
		}
	}
	return cores, nil
}

// SnapToStep rounds a spacing to the paper's 0.5 mm placement granularity.
func SnapToStep(v float64) float64 {
	return math.Round(v/SpacingStepMM) * SpacingStepMM
}
