package floorplan

import (
	"math"
	"testing"

	"chiplet25d/internal/geom"
	"chiplet25d/internal/materials"
)

func TestBuildStack2D(t *testing.T) {
	s, err := BuildStack(SingleChip())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	names := []string{"substrate", "c4", "chip", "tim"}
	if len(s.Layers) != len(names) {
		t.Fatalf("2D stack has %d layers, want %d", len(s.Layers), len(names))
	}
	for i, n := range names {
		if s.Layers[i].Name != n {
			t.Errorf("layer %d = %q, want %q", i, s.Layers[i].Name, n)
		}
	}
	if s.Layers[s.ChipLayer].Name != "chip" {
		t.Errorf("chip layer mislabeled: %q", s.Layers[s.ChipLayer].Name)
	}
}

func TestBuildStack25D(t *testing.T) {
	p, err := PaperOrg(16, 1, 0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := BuildStack(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	names := []string{"substrate", "c4", "interposer", "microbump", "chiplets", "tim"}
	for i, n := range names {
		if s.Layers[i].Name != n {
			t.Errorf("layer %d = %q, want %q", i, s.Layers[i].Name, n)
		}
	}
	if s.Layers[s.ChipLayer].Name != "chiplets" {
		t.Errorf("chip layer mislabeled: %q", s.Layers[s.ChipLayer].Name)
	}
	// Table I thicknesses.
	if s.Layers[2].ThicknessM != InterposerThicknessM {
		t.Errorf("interposer thickness = %v", s.Layers[2].ThicknessM)
	}
	// The chiplet layer must carry one silicon block per chiplet on an
	// epoxy background.
	chip := s.Layers[s.ChipLayer]
	if len(chip.Blocks) != 16 {
		t.Fatalf("chiplet layer has %d blocks, want 16", len(chip.Blocks))
	}
	if chip.Background.VertK != materials.Epoxy.K {
		t.Errorf("chiplet layer background should be epoxy, K = %v", chip.Background.VertK)
	}
	if chip.Blocks[0].Props.VertK != materials.Silicon.K {
		t.Errorf("chiplet blocks should be silicon, K = %v", chip.Blocks[0].Props.VertK)
	}
}

func TestBuildStackRejectsInvalidPlacement(t *testing.T) {
	p, err := UniformGrid(2, 40) // 60 mm interposer: violates Eq. (7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildStack(p); err == nil {
		t.Errorf("expected stack build to reject oversize interposer")
	}
}

// TestTableI pins the Table I stack parameters so accidental edits to the
// physical configuration fail loudly.
func TestTableI(t *testing.T) {
	wantThickness := map[string]float64{
		"substrate":  200e-6,
		"c4":         70e-6,
		"interposer": 110e-6,
		"microbump":  10e-6,
		"chiplets":   150e-6,
		"tim":        20e-6,
	}
	p, err := PaperOrg(4, 0, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := BuildStack(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range s.Layers {
		if want := wantThickness[l.Name]; math.Abs(l.ThicknessM-want) > 1e-12 {
			t.Errorf("layer %q thickness = %v, want %v", l.Name, l.ThicknessM, want)
		}
	}
	if SinkThicknessM != 6.9e-3 || SpreaderThicknessM != 1e-3 {
		t.Errorf("sink/spreader thicknesses drifted from Table I")
	}
}

func TestRasterizeLayerBlending(t *testing.T) {
	g, err := geom.NewGrid(4, 4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	l := Layer{
		Name:       "test",
		ThicknessM: 1e-4,
		Background: LayerProps{VertK: 1, LatK: 1, VolHeatCap: 1},
		Blocks: []Block{
			// Covers exactly the left half of the grid.
			{Rect: geom.Rect{X: 0, Y: 0, W: 2, H: 4}, Props: LayerProps{VertK: 101, LatK: 51, VolHeatCap: 11}},
		},
	}
	props := RasterizeLayer(l, g)
	// Left-half cells take block values; right half background.
	if p := props[g.Index(0, 0)]; math.Abs(p.VertK-101) > 1e-9 {
		t.Errorf("left cell VertK = %v, want 101", p.VertK)
	}
	if p := props[g.Index(3, 3)]; math.Abs(p.VertK-1) > 1e-9 {
		t.Errorf("right cell VertK = %v, want 1", p.VertK)
	}
}

func TestRasterizeLayerPartialCoverage(t *testing.T) {
	g, err := geom.NewGrid(2, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	l := Layer{
		Name:       "test",
		ThicknessM: 1e-4,
		Background: LayerProps{VertK: 10, LatK: 10, VolHeatCap: 10},
		Blocks: []Block{
			// Covers half of cell (0,0).
			{Rect: geom.Rect{X: 0, Y: 0, W: 0.5, H: 1}, Props: LayerProps{VertK: 20, LatK: 20, VolHeatCap: 20}},
		},
	}
	props := RasterizeLayer(l, g)
	// Cell (0,0): 50% at 20 + 50% at 10 = 15.
	if p := props[g.Index(0, 0)]; math.Abs(p.VertK-15) > 1e-9 {
		t.Errorf("blended VertK = %v, want 15", p.VertK)
	}
}

func TestStackValidateCatchesBadLayer(t *testing.T) {
	s := Stack{
		W: 10, H: 10,
		Layers: []Layer{{Name: "bad", ThicknessM: 0, Background: LayerProps{VertK: 1, LatK: 1, VolHeatCap: 1}}},
	}
	if err := s.Validate(); err == nil {
		t.Errorf("expected error for zero-thickness layer")
	}
	s.Layers[0].ThicknessM = 1e-4
	s.Layers[0].Background.VertK = 0
	if err := s.Validate(); err == nil {
		t.Errorf("expected error for zero conductivity")
	}
	if err := (Stack{}).Validate(); err == nil {
		t.Errorf("expected error for empty stack")
	}
}

func TestBuildStack3D(t *testing.T) {
	s, p3, err := BuildStack3D(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// substrate, c4, die0, bond1, die1, tim.
	if len(s.Layers) != 6 {
		t.Fatalf("2-high stack has %d layers, want 6", len(s.Layers))
	}
	if len(p3.CMOSLayers) != 2 || p3.CMOSLayers[0] != 2 || p3.CMOSLayers[1] != 4 {
		t.Fatalf("CMOS layers = %v", p3.CMOSLayers)
	}
	if p3.CoresPerLevel() != 128 {
		t.Fatalf("cores per level = %d", p3.CoresPerLevel())
	}
	// Footprint halves in one dimension; silicon area is conserved.
	if s.W != 18 || math.Abs(s.H-9) > 1e-9 {
		t.Fatalf("footprint = %.1fx%.1f", s.W, s.H)
	}
	if math.Abs(s.W*s.H*float64(p3.Levels)-324) > 1e-6 {
		t.Fatalf("silicon area not conserved")
	}
}

func TestBuildStack3DRejectsBadLevels(t *testing.T) {
	for _, levels := range []int{0, 1, 3, 5, 32} {
		if _, _, err := BuildStack3D(levels); err == nil {
			t.Errorf("levels=%d should be rejected", levels)
		}
	}
}
