package floorplan

import (
	"fmt"

	"chiplet25d/internal/geom"
	"chiplet25d/internal/materials"
)

// 3D stacking support: the paper contrasts 2.5D integration against 3D die
// stacking, which "reduces system footprint and increases memory bandwidth
// but exacerbates the thermal issues" (Sec. I). BuildStack3D models that
// alternative — the same 256 cores split across vertically stacked dies —
// so the comparison can be made quantitatively with the same thermal
// solver. Only the bottom-up order differs from the 2D stack: each extra
// CMOS level sits above a microbump bonding layer; only the top level faces
// the TIM/spreader/sink directly, which is exactly why the lower levels run
// hot.

// BondLayerThicknessM is the die-to-die bond (microbump) layer thickness.
const BondLayerThicknessM = 10e-6

// Stack3DLevels lists the supported level counts: the 324 mm² of silicon
// splits into equal dies stacked vertically.
var Stack3DLevels = []int{2, 4}

// Placement3D describes a 3D-stacked organization: `Levels` equal dies,
// each holding 256/Levels cores, sharing one footprint.
type Placement3D struct {
	// Levels is the die count.
	Levels int
	// W, H is the shared footprint in mm.
	W, H float64
	// CMOSLayers indexes the power-dissipating layers of the built stack,
	// bottom-up.
	CMOSLayers []int
}

// NewPlacement3D splits the 256-core chip into `levels` stacked dies. The
// footprint keeps the full 18 mm width and divides the height, so the core
// grid splits into 16 x (16/levels) tiles per die; levels must divide 16.
func NewPlacement3D(levels int) (Placement3D, error) {
	if levels < 2 || CoresPerEdge%levels != 0 {
		return Placement3D{}, fmt.Errorf("floorplan: 3D levels must be >= 2 and divide %d, got %d", CoresPerEdge, levels)
	}
	return Placement3D{
		Levels: levels,
		W:      ChipEdgeMM,
		H:      ChipEdgeMM / float64(levels),
	}, nil
}

// CoresPerLevel returns the core count on each die.
func (p Placement3D) CoresPerLevel() int { return NumCores / p.Levels }

// BuildStack3D assembles the layer stack: substrate, C4, then `Levels`
// silicon dies separated by bond layers, capped by the TIM. The returned
// Placement3D echo carries the CMOS layer indices for power injection via
// thermal.(*Model).SolveMulti.
func BuildStack3D(levels int) (Stack, Placement3D, error) {
	p3, err := NewPlacement3D(levels)
	if err != nil {
		return Stack{}, Placement3D{}, err
	}
	si := propsOf(materials.Silicon)
	fr4 := propsOf(materials.FR4)
	tim := propsOf(materials.TIM)
	c4 := propsOfComposite(materials.C4Layer)
	bond := propsOfComposite(materials.MicrobumpLayer)

	var s Stack
	s.W, s.H = p3.W, p3.H
	s.Layers = []Layer{
		{Name: "substrate", ThicknessM: SubstrateThicknessM, Background: fr4},
		{Name: "c4", ThicknessM: C4ThicknessM, Background: c4},
	}
	for lvl := 0; lvl < levels; lvl++ {
		if lvl > 0 {
			s.Layers = append(s.Layers, Layer{
				Name:       fmt.Sprintf("bond%d", lvl),
				ThicknessM: BondLayerThicknessM,
				Background: bond,
			})
		}
		s.Layers = append(s.Layers, Layer{
			Name:       fmt.Sprintf("die%d", lvl),
			ThicknessM: ChipThicknessM,
			Background: si,
		})
		p3.CMOSLayers = append(p3.CMOSLayers, len(s.Layers)-1)
	}
	s.Layers = append(s.Layers, Layer{Name: "tim", ThicknessM: TIMThicknessM, Background: tim})
	// ChipLayer points at the top die (the hottest-path reference); power
	// for all levels is injected via SolveMulti using CMOSLayers.
	s.ChipLayer = p3.CMOSLayers[len(p3.CMOSLayers)-1]
	s.Placement = Placement{
		R: 1, ChipletW: p3.W, ChipletH: p3.H, W: p3.W, H: p3.H,
		Chiplets: []geom.Rect{{X: 0, Y: 0, W: p3.W, H: p3.H}},
	}
	if err := s.Validate(); err != nil {
		return Stack{}, Placement3D{}, err
	}
	return s, p3, nil
}
