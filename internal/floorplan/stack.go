package floorplan

import (
	"fmt"

	"chiplet25d/internal/geom"
	"chiplet25d/internal/materials"
)

// Layer thicknesses from Table I, in meters.
const (
	SinkThicknessM       = 6.9e-3
	SpreaderThicknessM   = 1.0e-3
	TIMThicknessM        = 20e-6
	ChipThicknessM       = 150e-6
	MicrobumpThicknessM  = 10e-6
	InterposerThicknessM = 110e-6
	C4ThicknessM         = 70e-6
	SubstrateThicknessM  = 200e-6
)

// LayerProps are the effective thermal properties of a region within a
// layer. Vertical and lateral conductivities may differ for columnar
// composites (bump and TSV layers).
type LayerProps struct {
	VertK      float64 // W/(m·K), through-layer
	LatK       float64 // W/(m·K), in-plane
	VolHeatCap float64 // J/(m³·K)
}

func propsOf(m materials.Material) LayerProps {
	return LayerProps{VertK: m.K, LatK: m.K, VolHeatCap: m.VolHeatCap}
}

func propsOfComposite(c materials.Composite) LayerProps {
	return LayerProps{VertK: c.VerticalK(), LatK: c.LateralK(), VolHeatCap: c.VolHeatCap()}
}

// Block assigns material properties to a rectangular region of a layer.
type Block struct {
	Rect  geom.Rect
	Props LayerProps
}

// Layer is one horizontal slice of the package stack. Regions not covered
// by any Block take the Background properties.
type Layer struct {
	Name       string
	ThicknessM float64
	Background LayerProps
	Blocks     []Block
}

// Stack is the ordered package layer stack (bottom-up: substrate first, TIM
// last) over a common footprint. The spreader and heat sink above the TIM
// are modeled by the thermal solver (they extend beyond the footprint).
type Stack struct {
	// W, H is the common footprint in mm (interposer size, or chip size for
	// the 2D baseline).
	W, H float64
	// Layers, ordered bottom (substrate) to top (TIM).
	Layers []Layer
	// ChipLayer indexes the CMOS layer carrying the heat sources.
	ChipLayer int
	// Placement records the organization this stack was built from.
	Placement Placement
}

// BuildStack assembles the Table I layer stack for a placement. The 2D
// baseline omits the interposer and microbump layers (chip directly on the
// organic substrate via C4 bumps); 2.5D stacks include the full set with
// epoxy filling the inter-chiplet regions of the CMOS and microbump layers.
func BuildStack(p Placement) (Stack, error) {
	if err := p.Validate(); err != nil {
		return Stack{}, err
	}
	si := propsOf(materials.Silicon)
	epoxy := propsOf(materials.Epoxy)
	fr4 := propsOf(materials.FR4)
	tim := propsOf(materials.TIM)
	c4 := propsOfComposite(materials.C4Layer)
	ubump := propsOfComposite(materials.MicrobumpLayer)
	interp := propsOfComposite(materials.InterposerLayer)

	chipletBlocks := func(props LayerProps) []Block {
		blocks := make([]Block, len(p.Chiplets))
		for i, c := range p.Chiplets {
			blocks[i] = Block{Rect: c, Props: props}
		}
		return blocks
	}

	var s Stack
	s.W, s.H = p.W, p.H
	s.Placement = p
	if p.Is2D() {
		s.Layers = []Layer{
			{Name: "substrate", ThicknessM: SubstrateThicknessM, Background: fr4},
			{Name: "c4", ThicknessM: C4ThicknessM, Background: c4},
			{Name: "chip", ThicknessM: ChipThicknessM, Background: si},
			{Name: "tim", ThicknessM: TIMThicknessM, Background: tim},
		}
		s.ChipLayer = 2
		return s, nil
	}
	s.Layers = []Layer{
		{Name: "substrate", ThicknessM: SubstrateThicknessM, Background: fr4},
		{Name: "c4", ThicknessM: C4ThicknessM, Background: c4},
		{Name: "interposer", ThicknessM: InterposerThicknessM, Background: interp},
		{Name: "microbump", ThicknessM: MicrobumpThicknessM, Background: epoxy, Blocks: chipletBlocks(ubump)},
		{Name: "chiplets", ThicknessM: ChipThicknessM, Background: epoxy, Blocks: chipletBlocks(si)},
		{Name: "tim", ThicknessM: TIMThicknessM, Background: tim},
	}
	s.ChipLayer = 4
	return s, nil
}

// RasterizeLayer computes per-cell effective properties of a layer on the
// given grid by area-weighted blending of block and background properties.
func RasterizeLayer(l Layer, g geom.Grid) []LayerProps {
	n := g.NumCells()
	cov := make([]float64, n)
	vert := make([]float64, n)
	lat := make([]float64, n)
	hc := make([]float64, n)
	for _, b := range l.Blocks {
		frac := make([]float64, n)
		g.CoverageFraction(frac, b.Rect)
		for i, f := range frac {
			if f == 0 {
				continue
			}
			cov[i] += f
			vert[i] += f * b.Props.VertK
			lat[i] += f * b.Props.LatK
			hc[i] += f * b.Props.VolHeatCap
		}
	}
	out := make([]LayerProps, n)
	for i := 0; i < n; i++ {
		rest := 1 - cov[i]
		if rest < 0 {
			rest = 0 // overlapping blocks would be a floorplan bug; clamp defensively
		}
		out[i] = LayerProps{
			VertK:      vert[i] + rest*l.Background.VertK,
			LatK:       lat[i] + rest*l.Background.LatK,
			VolHeatCap: hc[i] + rest*l.Background.VolHeatCap,
		}
	}
	return out
}

// Validate checks stack-level invariants.
func (s Stack) Validate() error {
	if len(s.Layers) == 0 {
		return fmt.Errorf("floorplan: stack has no layers")
	}
	if s.ChipLayer < 0 || s.ChipLayer >= len(s.Layers) {
		return fmt.Errorf("floorplan: chip layer index %d out of range", s.ChipLayer)
	}
	for _, l := range s.Layers {
		if l.ThicknessM <= 0 {
			return fmt.Errorf("floorplan: layer %q has non-positive thickness", l.Name)
		}
		if l.Background.VertK <= 0 || l.Background.LatK <= 0 {
			return fmt.Errorf("floorplan: layer %q has non-positive background conductivity", l.Name)
		}
		for _, b := range l.Blocks {
			if b.Props.VertK <= 0 || b.Props.LatK <= 0 {
				return fmt.Errorf("floorplan: layer %q block %v has non-positive conductivity", l.Name, b.Rect)
			}
		}
	}
	return nil
}
