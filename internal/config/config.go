// Package config loads and saves optimizer configurations as JSON, so
// studies are reproducible artifacts rather than command lines. Every field
// is optional: absent fields keep the paper's defaults from
// org.DefaultConfig, which makes configuration files minimal diffs against
// the paper's setup.
package config

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"chiplet25d/internal/cost"
	"chiplet25d/internal/org"
	"chiplet25d/internal/perf"
	"chiplet25d/internal/power"
)

// File is the JSON schema. Pointer fields distinguish "absent" (keep
// default) from explicit zero values.
type File struct {
	// Benchmark names a built-in workload; CustomBenchmark defines one
	// inline (it wins if both are set).
	Benchmark       string          `json:"benchmark,omitempty"`
	CustomBenchmark *perf.Benchmark `json:"custom_benchmark,omitempty"`

	Alpha      *float64 `json:"alpha,omitempty"`
	Beta       *float64 `json:"beta,omitempty"`
	ThresholdC *float64 `json:"threshold_c,omitempty"`

	// ObjectiveMode selects how the search ranks combinations: "eq5"
	// (absent/empty: the paper's Eq. (5)) or "tco" (annual datacenter
	// $/GIPS from the TCO elaboration). Unlike kernel_threads this knob —
	// and the TCO section below — changes which organization wins, so both
	// are part of a search's cache identity.
	ObjectiveMode string `json:"objective_mode,omitempty"`
	// TCO overrides the datacenter elaboration constants for objective
	// mode "tco" (absent: cost.DefaultTCOParams).
	TCO *cost.TCOParams `json:"tco,omitempty"`

	ChipletCounts  []int    `json:"chiplet_counts,omitempty"`
	InterposerMin  *float64 `json:"interposer_min_mm,omitempty"`
	InterposerMax  *float64 `json:"interposer_max_mm,omitempty"`
	InterposerStep *float64 `json:"interposer_step_mm,omitempty"`

	Starts          *int     `json:"starts,omitempty"`
	Seed            *int64   `json:"seed,omitempty"`
	MaxNormCost     *float64 `json:"max_norm_cost,omitempty"`
	ParallelWorkers *int     `json:"parallel_workers,omitempty"`
	// SearchWorkers bounds concurrent greedy restarts (0/absent: serial for
	// the CLIs, the daemon default for chipletd). Purely a wall-clock knob:
	// results are bit-identical at any worker count (org's determinism
	// contract).
	SearchWorkers   *int     `json:"search_workers,omitempty"`
	SurrogateMargin *float64 `json:"surrogate_margin_c,omitempty"`
	// SpatialSurrogate enables the spatial compact-model fidelity tier
	// (absent: off); SpatialMargin is its escalation margin in °C — the
	// calibration's recorded worst-case error is always the floor, so the
	// default 0 adds no extra conservatism beyond the measured bound.
	SpatialSurrogate *bool    `json:"spatial_surrogate,omitempty"`
	SpatialMargin    *float64 `json:"spatial_margin_c,omitempty"`

	ThermalGridN      *int     `json:"thermal_grid_n,omitempty"`
	AmbientC          *float64 `json:"ambient_c,omitempty"`
	HeatTransferCoeff *float64 `json:"heat_transfer_coeff,omitempty"`
	BoardHeatTransfer *float64 `json:"board_heat_transfer_coeff,omitempty"`
	// KernelThreads sets the thermal solver's parallel-kernel worker count
	// (0/absent: the package default; 1: serial). Purely a wall-clock knob:
	// the kernel is bit-deterministic across thread counts.
	KernelThreads *int `json:"kernel_threads,omitempty"`
	// Preconditioner selects the CG preconditioner, "ic0" or "mg"
	// (absent/empty: "ic0"). Like kernel_threads it is a wall-clock knob —
	// both preconditioners converge to the same tolerance, so it does not
	// fork cache or engine identity — but unlike kernel_threads the results
	// agree to the solver tolerance (~1e-6 °C) rather than bit-exactly.
	Preconditioner *string `json:"preconditioner,omitempty"`
	// WarmStart enables cross-evaluation CG warm starts (absent: off);
	// WarmStartCache bounds the retained temperature fields (absent/0: 32).
	// See org.Config for the seeding discipline and the tolerance-bounded
	// purity trade.
	WarmStart      *bool `json:"warm_start,omitempty"`
	WarmStartCache *int  `json:"warm_start_cache,omitempty"`

	Cost    *cost.Params        `json:"cost,omitempty"`
	Leakage *power.LeakageModel `json:"leakage,omitempty"`

	// Server configures the chipletd daemon; the one-shot CLI tools ignore
	// it. A file may contain only this section (no benchmark needed).
	Server *Server `json:"server,omitempty"`
}

// Server is the chipletd daemon section of a configuration file. Pointer
// fields distinguish "absent" (keep default) from explicit zeros, matching
// the rest of the schema.
type Server struct {
	// Addr is the listen address (default ":8080").
	Addr string `json:"addr,omitempty"`
	// Workers bounds concurrent solves (default: GOMAXPROCS).
	Workers *int `json:"workers,omitempty"`
	// KernelThreads is the per-solve thermal-kernel worker count (default:
	// GOMAXPROCS divided by Workers, at least 1, so request-level and
	// kernel-level parallelism compose without oversubscribing).
	KernelThreads *int `json:"kernel_threads,omitempty"`
	// SearchWorkers is the per-search greedy-restart worker count applied to
	// search requests that do not set their own (default: GOMAXPROCS divided
	// by Workers, at least 1 — the same budget rule as KernelThreads, one
	// level up the hierarchy: serve pool → search workers → kernel threads).
	SearchWorkers *int `json:"search_workers,omitempty"`
	// QueueDepth bounds the admission queue; beyond it requests are shed
	// with 503 (default 64).
	QueueDepth *int `json:"queue_depth,omitempty"`
	// CacheCapacity bounds the content-addressed result cache in entries
	// (default 512).
	CacheCapacity *int `json:"cache_capacity,omitempty"`
	// RequestTimeoutSec is the per-request deadline in seconds (default 60).
	RequestTimeoutSec *float64 `json:"request_timeout_sec,omitempty"`
	// LogFormat selects the structured log encoding, "text" or "json"
	// (default "text").
	LogFormat string `json:"log_format,omitempty"`
	// LogLevel is the minimum log level: "debug", "info", "warn", or
	// "error" (default "info").
	LogLevel string `json:"log_level,omitempty"`
	// Pprof mounts net/http/pprof under /debug/pprof/ (default off).
	Pprof *bool `json:"pprof,omitempty"`
	// TraceRing is the flight-recorder capacity in traces (default 64).
	TraceRing *int `json:"trace_ring,omitempty"`
	// SlowTraceMS also retains request traces at least this slow (in
	// milliseconds) in the recorder's slow ring (default 2000).
	SlowTraceMS *float64 `json:"slow_trace_ms,omitempty"`
	// OTLPEndpoint is the base URL of an OTLP/HTTP collector; empty disables
	// trace and metric export (the default).
	OTLPEndpoint string `json:"otlp_endpoint,omitempty"`
	// TraceSample is the tail sampler's export probability for unremarkable
	// traces — slow and error traces always export (default 1.0; negative
	// exports only slow/error traces).
	TraceSample *float64 `json:"trace_sample,omitempty"`
	// AuditRing bounds the search convergence audit trail per request and
	// the /debug/search history (default 256; negative disables auditing).
	AuditRing *int `json:"audit_ring,omitempty"`
	// Preconditioner selects the thermal CG preconditioner for the daemon,
	// "ic0" or "mg" (default: the chipletd flag default, mg). WarmStart
	// toggles cross-evaluation CG warm starts (default: on). Both are
	// tolerance-equivalent accelerators excluded from cache identity.
	Preconditioner string `json:"preconditioner,omitempty"`
	WarmStart      *bool  `json:"warm_start,omitempty"`
	// Peers lists the other chipletd nodes of a sharded deployment by base
	// URL; SelfURL is this node's own URL as the peers address it (both
	// required together — see serve.Options). PeerTimeoutMS bounds one memo
	// peer-fetch round trip in milliseconds (default 500).
	Peers         []string `json:"peers,omitempty"`
	SelfURL       string   `json:"self_url,omitempty"`
	PeerTimeoutMS *float64 `json:"peer_timeout_ms,omitempty"`
}

// LoadServer parses JSON from r and returns the server section (zero value
// when the file has none). Unlike Load it does not require a benchmark, so
// daemon-only files work.
func LoadServer(r io.Reader) (Server, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var f File
	if err := dec.Decode(&f); err != nil {
		return Server{}, fmt.Errorf("config: %w", err)
	}
	if f.Server == nil {
		return Server{}, nil
	}
	return *f.Server, nil
}

// LoadServerFile loads the server section from a JSON file.
func LoadServerFile(path string) (Server, error) {
	fh, err := os.Open(path)
	if err != nil {
		return Server{}, err
	}
	defer fh.Close()
	return LoadServer(fh)
}

// ToConfig resolves the file against the paper defaults.
func (f *File) ToConfig() (org.Config, error) {
	var bench perf.Benchmark
	switch {
	case f.CustomBenchmark != nil:
		bench = *f.CustomBenchmark
	case f.Benchmark != "":
		b, err := perf.ByName(f.Benchmark)
		if err != nil {
			return org.Config{}, err
		}
		bench = b
	default:
		return org.Config{}, fmt.Errorf("config: no benchmark specified (set \"benchmark\" or \"custom_benchmark\")")
	}
	cfg := org.DefaultConfig(bench)
	setF := func(dst *float64, src *float64) {
		if src != nil {
			*dst = *src
		}
	}
	setF(&cfg.Objective.Alpha, f.Alpha)
	setF(&cfg.Objective.Beta, f.Beta)
	setF(&cfg.ThresholdC, f.ThresholdC)
	if f.ObjectiveMode != "" {
		cfg.ObjectiveMode = f.ObjectiveMode
	}
	if f.TCO != nil {
		cfg.TCO = *f.TCO
	}
	if f.ChipletCounts != nil {
		cfg.ChipletCounts = f.ChipletCounts
	}
	setF(&cfg.InterposerMinMM, f.InterposerMin)
	setF(&cfg.InterposerMaxMM, f.InterposerMax)
	setF(&cfg.InterposerStepMM, f.InterposerStep)
	if f.Starts != nil {
		cfg.Starts = *f.Starts
	}
	if f.Seed != nil {
		cfg.Seed = *f.Seed
	}
	setF(&cfg.MaxNormCost, f.MaxNormCost)
	if f.ParallelWorkers != nil {
		cfg.ParallelWorkers = *f.ParallelWorkers
	}
	if f.SearchWorkers != nil {
		cfg.SearchWorkers = *f.SearchWorkers
	}
	setF(&cfg.SurrogateMarginC, f.SurrogateMargin)
	if f.SpatialSurrogate != nil {
		cfg.SpatialSurrogate = *f.SpatialSurrogate
	}
	setF(&cfg.SpatialMarginC, f.SpatialMargin)
	if f.ThermalGridN != nil {
		cfg.Thermal.Nx, cfg.Thermal.Ny = *f.ThermalGridN, *f.ThermalGridN
	}
	if f.KernelThreads != nil {
		cfg.Thermal.KernelThreads = *f.KernelThreads
	}
	if f.Preconditioner != nil {
		cfg.Thermal.Preconditioner = *f.Preconditioner
	}
	if f.WarmStart != nil {
		cfg.WarmStart = *f.WarmStart
	}
	if f.WarmStartCache != nil {
		cfg.WarmStartCache = *f.WarmStartCache
	}
	setF(&cfg.Thermal.AmbientC, f.AmbientC)
	setF(&cfg.Thermal.HeatTransferCoeff, f.HeatTransferCoeff)
	setF(&cfg.Thermal.BoardHeatTransferCoeff, f.BoardHeatTransfer)
	if f.Cost != nil {
		cfg.CostParams = *f.Cost
	}
	if f.Leakage != nil {
		cfg.Leakage = *f.Leakage
	}
	if err := cfg.Validate(); err != nil {
		return org.Config{}, err
	}
	return cfg, nil
}

// Load parses JSON from r and resolves it into a configuration.
func Load(r io.Reader) (org.Config, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var f File
	if err := dec.Decode(&f); err != nil {
		return org.Config{}, fmt.Errorf("config: %w", err)
	}
	return f.ToConfig()
}

// LoadFile loads a configuration from a JSON file.
func LoadFile(path string) (org.Config, error) {
	fh, err := os.Open(path)
	if err != nil {
		return org.Config{}, err
	}
	defer fh.Close()
	return Load(fh)
}

// Save writes a complete (fully explicit) configuration file for cfg, so a
// run's exact setup can be archived next to its results.
func Save(w io.Writer, cfg org.Config) error {
	f := File{
		CustomBenchmark:   &cfg.Benchmark,
		Alpha:             &cfg.Objective.Alpha,
		Beta:              &cfg.Objective.Beta,
		ThresholdC:        &cfg.ThresholdC,
		ObjectiveMode:     cfg.ObjectiveMode,
		TCO:               &cfg.TCO,
		ChipletCounts:     cfg.ChipletCounts,
		InterposerMin:     &cfg.InterposerMinMM,
		InterposerMax:     &cfg.InterposerMaxMM,
		InterposerStep:    &cfg.InterposerStepMM,
		Starts:            &cfg.Starts,
		Seed:              &cfg.Seed,
		MaxNormCost:       &cfg.MaxNormCost,
		ParallelWorkers:   &cfg.ParallelWorkers,
		SearchWorkers:     &cfg.SearchWorkers,
		SurrogateMargin:   &cfg.SurrogateMarginC,
		SpatialSurrogate:  &cfg.SpatialSurrogate,
		SpatialMargin:     &cfg.SpatialMarginC,
		ThermalGridN:      &cfg.Thermal.Nx,
		AmbientC:          &cfg.Thermal.AmbientC,
		HeatTransferCoeff: &cfg.Thermal.HeatTransferCoeff,
		BoardHeatTransfer: &cfg.Thermal.BoardHeatTransferCoeff,
		KernelThreads:     &cfg.Thermal.KernelThreads,
		Preconditioner:    &cfg.Thermal.Preconditioner,
		WarmStart:         &cfg.WarmStart,
		WarmStartCache:    &cfg.WarmStartCache,
		Cost:              &cfg.CostParams,
		Leakage:           &cfg.Leakage,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&f)
}
