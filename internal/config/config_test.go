package config

import (
	"bytes"
	"strings"
	"testing"

	"chiplet25d/internal/org"
	"chiplet25d/internal/perf"
)

func TestLoadMinimal(t *testing.T) {
	cfg, err := Load(strings.NewReader(`{"benchmark": "cholesky"}`))
	if err != nil {
		t.Fatal(err)
	}
	// Defaults preserved.
	def := org.DefaultConfig(cfg.Benchmark)
	if cfg.ThresholdC != def.ThresholdC || cfg.Starts != def.Starts {
		t.Fatalf("defaults not preserved: %+v", cfg)
	}
	if cfg.Benchmark.Name != "cholesky" {
		t.Fatalf("benchmark = %q", cfg.Benchmark.Name)
	}
}

func TestLoadOverrides(t *testing.T) {
	cfg, err := Load(strings.NewReader(`{
		"benchmark": "canneal",
		"alpha": 0.5, "beta": 0.5,
		"threshold_c": 95,
		"chiplet_counts": [4],
		"interposer_step_mm": 2,
		"starts": 3,
		"seed": 42,
		"thermal_grid_n": 16,
		"ambient_c": 40,
		"board_heat_transfer_coeff": 100
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Objective.Alpha != 0.5 || cfg.ThresholdC != 95 || cfg.Seed != 42 {
		t.Fatalf("overrides not applied: %+v", cfg)
	}
	if len(cfg.ChipletCounts) != 1 || cfg.ChipletCounts[0] != 4 {
		t.Fatalf("chiplet counts = %v", cfg.ChipletCounts)
	}
	if cfg.Thermal.Nx != 16 || cfg.Thermal.AmbientC != 40 || cfg.Thermal.BoardHeatTransferCoeff != 100 {
		t.Fatalf("thermal overrides not applied: %+v", cfg.Thermal)
	}
}

func TestLoadCustomBenchmark(t *testing.T) {
	cfg, err := Load(strings.NewReader(`{
		"custom_benchmark": {
			"Name": "mykernel", "Suite": "local", "Class": 2,
			"RefCoreW": 1.5, "BaseIPC": 1.0, "MemFrac": 0.2,
			"Psat": 700, "Gamma": 2.0, "Traffic": 0.05
		}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Benchmark.Name != "mykernel" || cfg.Benchmark.Class != perf.HighPower {
		t.Fatalf("custom benchmark not loaded: %+v", cfg.Benchmark)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(strings.NewReader(`{}`)); err == nil {
		t.Errorf("expected error for missing benchmark")
	}
	if _, err := Load(strings.NewReader(`{"benchmark": "doom"}`)); err == nil {
		t.Errorf("expected error for unknown benchmark")
	}
	if _, err := Load(strings.NewReader(`{"benchmark": "shock", "bogus": 1}`)); err == nil {
		t.Errorf("expected error for unknown field")
	}
	if _, err := Load(strings.NewReader(`{"benchmark": "shock", "threshold_c": 10}`)); err == nil {
		t.Errorf("expected validation error for threshold below ambient")
	}
	if _, err := Load(strings.NewReader(`not json`)); err == nil {
		t.Errorf("expected parse error")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	b, err := perf.ByName("hpccg")
	if err != nil {
		t.Fatal(err)
	}
	cfg := org.DefaultConfig(b)
	cfg.ThresholdC = 95
	cfg.Objective = org.Objective{Alpha: 0.3, Beta: 0.7}
	cfg.Seed = 99
	cfg.Thermal.Nx, cfg.Thermal.Ny = 16, 16
	var buf bytes.Buffer
	if err := Save(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ThresholdC != 95 || got.Objective != cfg.Objective || got.Seed != 99 {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	if got.Benchmark.Name != "hpccg" || got.Thermal.Nx != 16 {
		t.Fatalf("round trip benchmark/grid wrong: %+v", got)
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile("/nonexistent/config.json"); err == nil {
		t.Errorf("expected error for missing file")
	}
}
