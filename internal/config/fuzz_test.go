package config

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// FuzzLoad exercises the configuration parser with arbitrary input: it must
// never panic, anything it accepts must validate, and Save must be a
// canonical fixpoint — Save(Load(Save(cfg))) byte-identical to Save(cfg).
// The serve layer's content-addressed search cache depends on that
// fixpoint: two requests resolving to the same search must hash alike.
func FuzzLoad(f *testing.F) {
	f.Add(`{"benchmark":"cholesky"}`)
	f.Add(`{"benchmark":"canneal","starts":2,"seed":7,"thermal_grid_n":16}`)
	f.Add(`{"benchmark":"hpccg","chiplet_counts":[4],"max_norm_cost":1,"alpha":1,"beta":0.5}`)
	f.Add(`{"custom_benchmark":{"name":"x","cpi":1,"mem_ratio":0.1}}`)
	f.Add(`{"benchmark":"nope"}`)
	f.Add(`{"unknown_field":1}`)
	f.Add(`{"benchmark":"cholesky"} trailing`)
	f.Add(`not json`)
	f.Fuzz(func(t *testing.T, input string) {
		cfg, err := Load(strings.NewReader(input))
		if err != nil {
			return
		}
		if verr := cfg.Validate(); verr != nil {
			t.Fatalf("accepted config fails validation: %v", verr)
		}
		var first bytes.Buffer
		if err := Save(&first, cfg); err != nil {
			return // non-finite floats that survived validation are unencodable
		}
		again, err := Load(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("Save output rejected by Load: %v\n%s", err, first.String())
		}
		var second bytes.Buffer
		if err := Save(&second, again); err != nil {
			t.Fatalf("second Save failed: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("Save is not a fixpoint:\nfirst:  %s\nsecond: %s", first.String(), second.String())
		}
	})
}

// FuzzLoadServer exercises the daemon-section parser: never panic, and any
// accepted section must survive an encode/re-decode round trip unchanged.
func FuzzLoadServer(f *testing.F) {
	f.Add(`{}`)
	f.Add(`{"server":{"addr":":9090","workers":4,"queue_depth":8}}`)
	f.Add(`{"server":{"log_format":"json","log_level":"debug","pprof":true}}`)
	f.Add(`{"benchmark":"cholesky","server":{"cache_capacity":16}}`)
	f.Add(`{"server":{"workers":"not-a-number"}}`)
	f.Add(`null`)
	f.Fuzz(func(t *testing.T, input string) {
		s, err := LoadServer(strings.NewReader(input))
		if err != nil {
			return
		}
		// Round-trip the section through the File schema it lives in.
		enc, err := json.Marshal(File{Server: &s})
		if err != nil {
			return // unencodable values (non-finite floats) are allowed in, not out
		}
		again, err := LoadServer(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("re-decode of encoded server section failed: %v\n%s", err, enc)
		}
		if !reflect.DeepEqual(s, again) {
			t.Fatalf("server section changed across round trip:\nbefore: %+v\nafter:  %+v", s, again)
		}
	})
}
