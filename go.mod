module chiplet25d

go 1.22
