package chiplet25d

// Benchmark harness: one testing.B benchmark per paper table/figure (each
// regenerates the artifact's data series at reduced scale through the same
// code paths cmd/experiments uses at full scale), plus micro-benchmarks of
// the substrates (thermal solve, cost model, NoC sizing, greedy search).
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// The per-figure benchmarks report figure-specific metrics (rows produced,
// thermal sims) alongside time/op.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"chiplet25d/internal/expt"
	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/noc"
	"chiplet25d/internal/obs"
	"chiplet25d/internal/obs/export"
	"chiplet25d/internal/org"
	"chiplet25d/internal/perf"
	"chiplet25d/internal/power"
	"chiplet25d/internal/serve"
	"chiplet25d/internal/thermal"
)

// benchOptions is the reduced-scale configuration used by the per-figure
// benchmarks: 16x16 thermal grid, benchmark subsets, coarse sweeps.
func benchOptions() expt.Options {
	return expt.Options{Scale: expt.Reduced, ThermalGridN: 16, Seed: 1}
}

func runExperiment(b *testing.B, name string, opts expt.Options) {
	b.Helper()
	e, err := expt.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	rows := 0
	for i := 0; i < b.N; i++ {
		tb, err := e.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
		rows = len(tb.Rows)
		if err := tb.WriteText(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows), "rows")
}

// BenchmarkFig3aCostVsInterposer regenerates Fig. 3(a): normalized 2.5D
// cost versus interposer size for three defect densities.
func BenchmarkFig3aCostVsInterposer(b *testing.B) {
	runExperiment(b, "fig3a", benchOptions())
}

// BenchmarkFig3bTempVsInterposer regenerates Fig. 3(b): peak temperature
// versus interposer size for synthetic chiplet power densities.
func BenchmarkFig3bTempVsInterposer(b *testing.B) {
	runExperiment(b, "fig3b", benchOptions())
}

// BenchmarkFig5TempVsSpacing regenerates Fig. 5: peak temperature versus
// uniform chiplet spacing with all 256 cores at 1 GHz.
func BenchmarkFig5TempVsSpacing(b *testing.B) {
	o := benchOptions()
	o.Benchmarks = []string{"shock", "canneal"}
	runExperiment(b, "fig5", o)
}

// BenchmarkFig6PerfCost regenerates Fig. 6: normalized maximum IPS and cost
// versus interposer size under 85 °C.
func BenchmarkFig6PerfCost(b *testing.B) {
	o := benchOptions()
	o.Benchmarks = []string{"canneal"}
	runExperiment(b, "fig6", o)
}

// BenchmarkFig7Objective regenerates Fig. 7: minimum Eq. (5) objective
// versus interposer size for three (α, β) pairs.
func BenchmarkFig7Objective(b *testing.B) {
	o := benchOptions()
	o.Benchmarks = []string{"canneal"}
	runExperiment(b, "fig7", o)
}

// BenchmarkFig8Organizations regenerates Fig. 8: the performance-optimal
// organizations and their MinTemp allocation maps.
func BenchmarkFig8Organizations(b *testing.B) {
	o := benchOptions()
	o.Benchmarks = []string{"canneal"}
	runExperiment(b, "fig8", o)
}

// BenchmarkHeadlineIsoCost regenerates the Sec. V-B headline: iso-cost
// performance improvement at 85 °C.
func BenchmarkHeadlineIsoCost(b *testing.B) {
	o := benchOptions()
	o.Benchmarks = []string{"cholesky"}
	runExperiment(b, "headline85", o)
}

// BenchmarkSensitivityThresholds regenerates the Sec. V-B threshold
// sensitivity study.
func BenchmarkSensitivityThresholds(b *testing.B) {
	o := benchOptions()
	o.Benchmarks = []string{"cholesky"}
	runExperiment(b, "sensitivity", o)
}

// BenchmarkCostReduction regenerates the iso-performance 36% cost-saving
// headline.
func BenchmarkCostReduction(b *testing.B) {
	o := benchOptions()
	o.Benchmarks = []string{"canneal"}
	runExperiment(b, "costreduction", o)
}

// BenchmarkGreedyVsExhaustive regenerates the Sec. III-D validation of the
// multi-start greedy against exhaustive placement search.
func BenchmarkGreedyVsExhaustive(b *testing.B) {
	o := benchOptions()
	o.Benchmarks = []string{"canneal"}
	runExperiment(b, "validate", o)
}

// BenchmarkAblationNonUniform measures the non-uniform vs uniform spacing
// ablation (a DESIGN.md-flagged design choice).
func BenchmarkAblationNonUniform(b *testing.B) {
	runExperiment(b, "ablation-nonuniform", benchOptions())
}

// BenchmarkAblationAllocation measures the MinTemp vs row-major ablation.
func BenchmarkAblationAllocation(b *testing.B) {
	runExperiment(b, "ablation-alloc", benchOptions())
}

// --- substrate micro-benchmarks ---

// solve64Fixture assembles the paper's 64x64 full-stack model with the
// given preconditioner plus a uniform 400 W power map — the shared setup of
// the cold-solve and warm-start micro-benchmarks below.
func solve64Fixture(b *testing.B, precond string) (*thermal.Model, floorplan.Placement, []float64) {
	b.Helper()
	pl, err := floorplan.UniformGrid(4, 4)
	if err != nil {
		b.Fatal(err)
	}
	stack, err := floorplan.BuildStack(pl)
	if err != nil {
		b.Fatal(err)
	}
	cfg := thermal.DefaultConfig()
	cfg.Preconditioner = precond
	m, err := thermal.NewModel(stack, cfg)
	if err != nil {
		b.Fatal(err)
	}
	pmap := make([]float64, m.Grid().NumCells())
	for _, c := range pl.Chiplets {
		m.Grid().RasterizeAdd(pmap, c, 400.0/float64(len(pl.Chiplets)))
	}
	return m, pl, pmap
}

// benchmarkThermalSolve64 measures one cold steady-state solve of the
// paper's 64x64 grid (the unit of work the paper counts in CPU-hours) and
// reports the CG iteration count — the machine-independent half of the
// speedup claim, which scripts/bench.sh gates on.
func benchmarkThermalSolve64(b *testing.B, precond string) {
	m, _, pmap := solve64Fixture(b, precond)
	iters := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := m.Solve(pmap)
		if err != nil {
			b.Fatal(err)
		}
		iters = res.Iterations
		res.Recycle()
	}
	b.ReportMetric(float64(iters), "cg-iters/op")
}

// BenchmarkThermalSolve64 is the IC(0)-preconditioned cold solve — the
// pre-multigrid baseline.
func BenchmarkThermalSolve64(b *testing.B) { benchmarkThermalSolve64(b, thermal.PrecondIC0) }

// BenchmarkThermalSolve64MG is the multigrid-preconditioned cold solve; its
// ratio against BenchmarkThermalSolve64 is BENCH_5's cold_solve_speedup.
func BenchmarkThermalSolve64MG(b *testing.B) { benchmarkThermalSolve64(b, thermal.PrecondMG) }

// BenchmarkThermalSolveWarmNeighbor64MG measures the org engine's
// cross-evaluation warm start at the solver layer: a multigrid solve of the
// 64x64 grid seeded with the converged field of the same operator under a
// neighboring power map (a different DVFS point on the same placement).
func BenchmarkThermalSolveWarmNeighbor64MG(b *testing.B) {
	m, _, pmap := solve64Fixture(b, thermal.PrecondMG)
	seedRes, err := m.Solve(pmap)
	if err != nil {
		b.Fatal(err)
	}
	// The neighboring operating point: same placement (same operator),
	// ~10% lower power everywhere.
	pmap2 := make([]float64, len(pmap))
	for i, p := range pmap {
		pmap2[i] = 0.9 * p
	}
	iters := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := m.SolveSeeded(pmap2, seedRes.T)
		if err != nil {
			b.Fatal(err)
		}
		iters = res.Iterations
		res.Recycle()
	}
	b.ReportMetric(float64(iters), "cg-iters/op")
}

// BenchmarkThermalModelAssembly measures conductance-matrix assembly plus
// IC(0) factorization for the 64x64 2.5D stack.
func BenchmarkThermalModelAssembly(b *testing.B) {
	pl, err := floorplan.UniformGrid(4, 4)
	if err != nil {
		b.Fatal(err)
	}
	stack, err := floorplan.BuildStack(pl)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := thermal.NewModel(stack, thermal.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLeakageCoupledSim measures one full leakage-temperature
// fixed-point simulation (the optimizer's evaluation unit) at 32x32.
func BenchmarkLeakageCoupledSim(b *testing.B) {
	bench, err := perf.ByName("cholesky")
	if err != nil {
		b.Fatal(err)
	}
	pl, err := floorplan.UniformGrid(4, 4)
	if err != nil {
		b.Fatal(err)
	}
	stack, err := floorplan.BuildStack(pl)
	if err != nil {
		b.Fatal(err)
	}
	tc := thermal.DefaultConfig()
	tc.Nx, tc.Ny = 32, 32
	m, err := thermal.NewModel(stack, tc)
	if err != nil {
		b.Fatal(err)
	}
	cores, err := pl.Cores()
	if err != nil {
		b.Fatal(err)
	}
	active, err := power.MintempActive(256)
	if err != nil {
		b.Fatal(err)
	}
	w := power.Workload{RefCoreW: bench.RefCoreW, Op: power.NominalPoint,
		Active: active, NoCW: 8, Leakage: power.DefaultLeakage()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := power.Simulate(m, cores, w, power.DefaultSimOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCostModel measures Eq. (1)-(4) evaluation across the interposer
// sweep.
func BenchmarkCostModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		total := 0.0
		for edge := 20.0; edge <= 50; edge += 0.5 {
			pl, err := floorplan.PaperOrgForInterposer(16, edge, 0, 0)
			if err != nil {
				b.Fatal(err)
			}
			total += SystemCost(pl)
		}
		if total <= 0 {
			b.Fatal("bogus cost")
		}
	}
}

// BenchmarkMeshPower measures the NoC power model including interposer
// driver sizing for a 16-chiplet placement.
func BenchmarkMeshPower(b *testing.B) {
	pl, err := floorplan.UniformGrid(4, 8)
	if err != nil {
		b.Fatal(err)
	}
	lp, rp := noc.DefaultLinkParams(), noc.DefaultRouterParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := noc.MeshPower(pl, power.NominalPoint, 256, 0.1, lp, rp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGreedyPlacementSearch measures one multi-start greedy placement
// search at a fixed cost bucket (the paper's step-3 unit).
func BenchmarkGreedyPlacementSearch(b *testing.B) {
	bench, err := perf.ByName("canneal")
	if err != nil {
		b.Fatal(err)
	}
	cfg := org.DefaultConfig(bench)
	cfg.Thermal.Nx, cfg.Thermal.Ny = 16, 16
	cfg.Starts = 5
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, err := org.NewSearcher(cfg) // fresh searcher: no memo carryover
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, _, _, err := s.FindPlacement(16, 36, power.NominalPoint, 224); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2LinkModel regenerates the Fig. 2 link-model table.
func BenchmarkFig2LinkModel(b *testing.B) {
	runExperiment(b, "fig2", benchOptions())
}

// BenchmarkSprint regenerates the computational-sprinting extension table.
func BenchmarkSprint(b *testing.B) {
	o := benchOptions()
	o.Benchmarks = []string{"shock"}
	runExperiment(b, "sprint", o)
}

// BenchmarkTSPCurves regenerates the Thermal Safe Power extension table.
func BenchmarkTSPCurves(b *testing.B) {
	runExperiment(b, "tsp", benchOptions())
}

// BenchmarkReliability regenerates the lifetime-gain extension table.
func BenchmarkReliability(b *testing.B) {
	o := benchOptions()
	o.Benchmarks = []string{"lu.cont"}
	runExperiment(b, "reliability", o)
}

// BenchmarkTransientStep measures one backward-Euler transient step of the
// 2.5D stack at the paper's grid.
func BenchmarkTransientStep(b *testing.B) {
	pl, err := floorplan.UniformGrid(4, 4)
	if err != nil {
		b.Fatal(err)
	}
	stack, err := floorplan.BuildStack(pl)
	if err != nil {
		b.Fatal(err)
	}
	tc := thermal.DefaultConfig()
	tc.Nx, tc.Ny = 32, 32
	m, err := thermal.NewModel(stack, tc)
	if err != nil {
		b.Fatal(err)
	}
	ts, err := m.NewTransientSolver(0.1)
	if err != nil {
		b.Fatal(err)
	}
	pmap := make([]float64, m.Grid().NumCells())
	for _, c := range pl.Chiplets {
		m.Grid().RasterizeAdd(pmap, c, 400.0/float64(len(pl.Chiplets)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ts.Step(pmap); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkXYLinkLoads measures the exact XY-routing load computation for
// the full 256-core mesh.
func BenchmarkXYLinkLoads(b *testing.B) {
	active := make([]bool, floorplan.NumCores)
	for i := range active {
		active[i] = true
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := noc.XYLinkLoads(active); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnnealingPlacementSearch measures the simulated-annealing
// alternative to the greedy at the same instance.
func BenchmarkAnnealingPlacementSearch(b *testing.B) {
	bench, err := perf.ByName("canneal")
	if err != nil {
		b.Fatal(err)
	}
	cfg := org.DefaultConfig(bench)
	cfg.Thermal.Nx, cfg.Thermal.Ny = 16, 16
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, err := org.NewSearcher(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, _, _, err := s.FindPlacementAnnealing(16, 36, power.NominalPoint, 224, org.DefaultAnnealParams()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParetoFront measures the full cost-performance frontier
// extraction at reduced scale.
func BenchmarkParetoFront(b *testing.B) {
	bench, err := perf.ByName("swaptions")
	if err != nil {
		b.Fatal(err)
	}
	cfg := org.DefaultConfig(bench)
	cfg.Thermal.Nx, cfg.Thermal.Ny = 16, 16
	cfg.InterposerStepMM = 5
	cfg.Starts = 3
	points := 0
	for i := 0; i < b.N; i++ {
		s, err := org.NewSearcher(cfg)
		if err != nil {
			b.Fatal(err)
		}
		front, err := s.ParetoFront()
		if err != nil {
			b.Fatal(err)
		}
		points = len(front)
	}
	b.ReportMetric(float64(points), "front_points")
}

// BenchmarkOptimizeEndToEnd measures a complete Eq. (5) optimization run
// (reduced scale) for a low-power benchmark.
func BenchmarkOptimizeEndToEnd(b *testing.B) {
	bench, err := perf.ByName("canneal")
	if err != nil {
		b.Fatal(err)
	}
	cfg := org.DefaultConfig(bench)
	cfg.Thermal.Nx, cfg.Thermal.Ny = 16, 16
	cfg.InterposerStepMM = 2
	cfg.Starts = 5
	sims := 0
	for i := 0; i < b.N; i++ {
		s, err := org.NewSearcher(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := s.Optimize()
		if err != nil {
			b.Fatal(err)
		}
		if !res.Feasible {
			b.Fatal("expected feasible result")
		}
		sims = res.ThermalSims
	}
	b.ReportMetric(float64(sims), "thermal_sims")
}

// BenchmarkStacking regenerates the 2D vs 2.5D vs 3D stacking comparison.
func BenchmarkStacking(b *testing.B) {
	runExperiment(b, "stacking", benchOptions())
}

// benchSolve runs the leakage-coupled solve loop that dominates every
// serving request, optionally under a span trace, so the pair below bounds
// the tracer's overhead on the hot path (spans are created inside every CG
// solve of every leakage iteration).
func benchSolve(b *testing.B, traced bool) {
	b.Helper()
	bench, err := perf.ByName("cholesky")
	if err != nil {
		b.Fatal(err)
	}
	pl, err := floorplan.UniformGrid(4, 4)
	if err != nil {
		b.Fatal(err)
	}
	stack, err := floorplan.BuildStack(pl)
	if err != nil {
		b.Fatal(err)
	}
	tc := thermal.DefaultConfig()
	tc.Nx, tc.Ny = 32, 32
	m, err := thermal.NewModel(stack, tc)
	if err != nil {
		b.Fatal(err)
	}
	cores, err := pl.Cores()
	if err != nil {
		b.Fatal(err)
	}
	active, err := power.MintempActive(256)
	if err != nil {
		b.Fatal(err)
	}
	w := power.Workload{RefCoreW: bench.RefCoreW, Op: power.NominalPoint,
		Active: active, NoCW: 8, Leakage: power.DefaultLeakage()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := context.Background()
		if traced {
			ctx = obs.WithTrace(ctx, obs.NewTrace("bench", "bench"))
		}
		if _, err := power.SimulateCtx(ctx, m, cores, w, power.DefaultSimOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveUntraced is the baseline for the tracer-overhead guard in
// scripts/ci.sh: the same solve as BenchmarkSolveTraced on an untraced
// context, where Start returns nil spans.
func BenchmarkSolveUntraced(b *testing.B) { benchSolve(b, false) }

// BenchmarkSolveTraced measures the solve with a live trace attached, the
// way chipletd runs it. CI fails if this regresses more than a few percent
// over BenchmarkSolveUntraced.
func BenchmarkSolveTraced(b *testing.B) { benchSolve(b, true) }

// BenchmarkSolveTracedExporting measures the solve with a live trace that is
// finished, snapshotted, and enqueued to a running OTLP exporter after every
// iteration — the full serving-path telemetry cost. The export-overhead gate
// in scripts/ci.sh bounds this against BenchmarkSolveUntraced: the bounded
// async queue must keep export off the solve path.
func BenchmarkSolveTracedExporting(b *testing.B) {
	sink := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.Copy(io.Discard, r.Body)
	}))
	defer sink.Close()
	exp := export.New(export.Options{Endpoint: sink.URL})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = exp.Shutdown(ctx)
	}()

	bench, err := perf.ByName("cholesky")
	if err != nil {
		b.Fatal(err)
	}
	pl, err := floorplan.UniformGrid(4, 4)
	if err != nil {
		b.Fatal(err)
	}
	stack, err := floorplan.BuildStack(pl)
	if err != nil {
		b.Fatal(err)
	}
	tc := thermal.DefaultConfig()
	tc.Nx, tc.Ny = 32, 32
	m, err := thermal.NewModel(stack, tc)
	if err != nil {
		b.Fatal(err)
	}
	cores, err := pl.Cores()
	if err != nil {
		b.Fatal(err)
	}
	active, err := power.MintempActive(256)
	if err != nil {
		b.Fatal(err)
	}
	w := power.Workload{RefCoreW: bench.RefCoreW, Op: power.NominalPoint,
		Active: active, NoCW: 8, Leakage: power.DefaultLeakage()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := obs.NewTrace("bench", "bench")
		ctx := obs.WithTrace(context.Background(), tr)
		if _, err := power.SimulateCtx(ctx, m, cores, w, power.DefaultSimOptions()); err != nil {
			b.Fatal(err)
		}
		tr.Finish()
		exp.Enqueue(tr.Snapshot())
	}
}

// BenchmarkGreedyPlacementSearchAudited is BenchmarkGreedyPlacementSearch
// with a convergence audit log attached, bounding what ?audit=1 costs a
// search (one bounded ring append per event versus a nil check).
func BenchmarkGreedyPlacementSearchAudited(b *testing.B) {
	bench, err := perf.ByName("canneal")
	if err != nil {
		b.Fatal(err)
	}
	cfg := org.DefaultConfig(bench)
	cfg.Thermal.Nx, cfg.Thermal.Ny = 16, 16
	cfg.Starts = 5
	events := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, err := org.NewSearcher(cfg) // fresh searcher: no memo carryover
		if err != nil {
			b.Fatal(err)
		}
		al := org.NewAuditLog(256)
		s.WithAudit(al)
		b.StartTimer()
		if _, _, _, err := s.FindPlacement(16, 36, power.NominalPoint, 224); err != nil {
			b.Fatal(err)
		}
		events = al.Len()
	}
	b.ReportMetric(float64(events), "audit_events")
}

// --- chipletd serving-path benchmarks ---

// chipletdSolve posts one solve request through the full HTTP stack and
// fails the benchmark on any non-200.
func chipletdSolve(b *testing.B, h http.Handler, body string) {
	b.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/thermal/solve", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("solve = %d, body = %s", rec.Code, rec.Body)
	}
}

func chipletdBody(cores int) string {
	return fmt.Sprintf(`{"placement": {"chiplets": 4, "s3_mm": 1}, "benchmark": "cholesky",
		"freq_mhz": 533, "cores": %d, "grid_n": 16}`, cores)
}

// BenchmarkChipletdSolveCacheMiss measures the cold solve path through
// chipletd: every iteration uses a single-entry cache and a never-repeating
// key sequence, so each request runs a fresh leakage-coupled simulation.
func BenchmarkChipletdSolveCacheMiss(b *testing.B) {
	opts := serve.DefaultOptions()
	opts.CacheCapacity = 1                                       // alternating keys below can never hit
	opts.Logger = slog.New(slog.NewTextHandler(io.Discard, nil)) // keep bench output readable
	s := serve.New(opts)
	h := s.Handler()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chipletdSolve(b, h, chipletdBody(floorplan.NumCores-i%2)) // 256/255 alternate
	}
}

// BenchmarkChipletdSolveCacheHit measures the warm path: one solve seeds
// the content-addressed cache, then every iteration is answered from it.
// The acceptance bar is >= 10x faster than BenchmarkChipletdSolveCacheMiss.
func BenchmarkChipletdSolveCacheHit(b *testing.B) {
	opts := serve.DefaultOptions()
	opts.Logger = slog.New(slog.NewTextHandler(io.Discard, nil)) // keep bench output readable
	s := serve.New(opts)
	h := s.Handler()
	body := chipletdBody(floorplan.NumCores)
	chipletdSolve(b, h, body) // seed the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chipletdSolve(b, h, body)
	}
}

// --- scale-out serving-path benchmarks ---

// sweepBatchBody is a 64-candidate near-duplicate sweep: four spacings that
// land in the same half-millimeter canonical cell, crossed with four DVFS
// frequencies and four core counts. The spacing axis coalesces 4-to-1
// inside the batch, so the 64 items resolve through 16 unique computations.
const sweepBatchBody = `{"sweep": {
  "solve": {"placement": {"chiplets": 4, "s3_mm": 1}, "benchmark": "cholesky",
            "freq_mhz": 533, "cores": 128, "grid_n": 8},
  "spacing_mm": [1.0, 1.05, 1.1, 1.2],
  "freq_mhz": [1000, 800, 533, 400],
  "cores": [128, 160, 192, 224]}}`

// newBenchHTTPServer starts a chipletd handler behind a real TCP listener so
// the batch-vs-sequential comparison charges both sides honest per-request
// HTTP costs, not recorder shortcuts.
func newBenchHTTPServer(b *testing.B) *httptest.Server {
	b.Helper()
	opts := serve.DefaultOptions()
	opts.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	ts := httptest.NewServer(serve.New(opts).Handler())
	b.Cleanup(ts.Close)
	return ts
}

func benchPost(b *testing.B, url, body string) []byte {
	b.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("POST %s = %d: %s", url, resp.StatusCode, out)
	}
	return out
}

// BenchmarkChipletdBatchSweep64Warm measures the 64-candidate sweep as one
// POST /v1/batch on the warm path: a single HTTP round trip whose items all
// resolve from the result cache. The cold seeding pass also reports the
// sweep's coalesce-hit-ratio (computed keys saved by canonicalization before
// the pool, 0.75 for this template). The acceptance bar in scripts/ci.sh is
// >= 3x over BenchmarkChipletdSequentialSweep64Warm.
func BenchmarkChipletdBatchSweep64Warm(b *testing.B) {
	ts := newBenchHTTPServer(b)
	var cold struct {
		Total            int     `json:"total"`
		Computed         int     `json:"computed"`
		CoalesceHitRatio float64 `json:"coalesce_hit_ratio"`
	}
	if err := json.Unmarshal(benchPost(b, ts.URL+"/v1/batch", sweepBatchBody), &cold); err != nil {
		b.Fatal(err)
	}
	if cold.Total != 64 {
		b.Fatalf("sweep expanded to %d items, want 64", cold.Total)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, ts.URL+"/v1/batch", sweepBatchBody)
	}
	b.ReportMetric(cold.CoalesceHitRatio, "coalesce-hit-ratio")
}

// BenchmarkChipletdSequentialSweep64Warm is the client-side alternative the
// batch endpoint replaces: the same 64 candidates as 64 sequential HTTP
// solve requests against a warm cache.
func BenchmarkChipletdSequentialSweep64Warm(b *testing.B) {
	ts := newBenchHTTPServer(b)
	var bodies []string
	for _, spacing := range []float64{1.0, 1.05, 1.1, 1.2} {
		for _, freq := range []int{1000, 800, 533, 400} {
			for _, cores := range []int{128, 160, 192, 224} {
				bodies = append(bodies, fmt.Sprintf(
					`{"placement": {"chiplets": 4, "s3_mm": %g}, "benchmark": "cholesky",
					  "freq_mhz": %d, "cores": %d, "grid_n": 8}`, spacing, freq, cores))
			}
		}
	}
	for _, body := range bodies { // warm the cache
		benchPost(b, ts.URL+"/v1/thermal/solve", body)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, body := range bodies {
			benchPost(b, ts.URL+"/v1/thermal/solve", body)
		}
	}
}

// BenchmarkChipletdPeerFetchHit measures what a peer pays to pull one
// memoized simulation over GET /v1/memo/{fingerprint}/{key} — the unit cost
// of the sharding layer's remote-memo alternative to re-simulating.
func BenchmarkChipletdPeerFetchHit(b *testing.B) {
	ts := newBenchHTTPServer(b)
	benchPost(b, ts.URL+"/v1/thermal/solve",
		`{"placement": {"chiplets": 4, "s3_mm": 1}, "benchmark": "cholesky",
		  "freq_mhz": 533, "cores": 128, "grid_n": 8}`)
	resp, err := http.Get(ts.URL + "/debug/shard?keys=1")
	if err != nil {
		b.Fatal(err)
	}
	var shard struct {
		Engines []struct {
			FingerprintHash string   `json:"fingerprint_hash"`
			MemoKeys        []string `json:"memo_keys"`
		} `json:"engines"`
	}
	err = json.NewDecoder(resp.Body).Decode(&shard)
	resp.Body.Close()
	if err != nil {
		b.Fatal(err)
	}
	if len(shard.Engines) != 1 || len(shard.Engines[0].MemoKeys) == 0 {
		b.Fatalf("shard view = %+v, want one engine with a resident memo key", shard)
	}
	url := ts.URL + "/v1/memo/" + shard.Engines[0].FingerprintHash + "/" + shard.Engines[0].MemoKeys[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Get(url)
		if err != nil {
			b.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("memo fetch = %d", resp.StatusCode)
		}
	}
}
