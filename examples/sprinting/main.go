// Sprinting demonstrates the transient-thermal view of dark silicon:
// computational sprinting (Raghavan et al.) tolerates short full-throttle
// bursts above the sustainable envelope, cooling down afterward. A
// thermally-aware 2.5D organization stretches the sprint — and with enough
// interposer, turns the burst into steady state, which is the paper's
// reclaimed dark silicon.
//
// Run with:
//
//	go run ./examples/sprinting [-bench shock]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	chiplet "chiplet25d"
)

func main() {
	bench := flag.String("bench", "shock", "benchmark ("+strings.Join(chiplet.BenchmarkNames(), ", ")+")")
	flag.Parse()

	opts := &chiplet.SimOptions{GridN: 32}
	fmt.Printf("%s: all 256 cores at 1 GHz from idle; how long until 85 °C?\n\n", *bench)
	fmt.Printf("%-24s  %s\n", "organization", "sprint duration")

	show := func(name string, pl chiplet.Placement) {
		res, err := chiplet.SprintTime(pl, *bench, 85, 60, opts)
		if err != nil {
			log.Fatal(err)
		}
		if res.Sustained {
			fmt.Printf("%-24s  sustained indefinitely (steady state below 85 °C)\n", name)
			return
		}
		fmt.Printf("%-24s  %.1f s\n", name, res.SprintSeconds)
	}

	show("single chip", chiplet.SingleChip())
	for _, spec := range []struct {
		r  int
		sp float64
	}{{2, 4}, {4, 4}, {4, 8}} {
		pl, err := chiplet.UniformGrid(spec.r, spec.sp)
		if err != nil {
			log.Fatal(err)
		}
		show(fmt.Sprintf("%d chiplets @ %.0f mm", spec.r*spec.r, spec.sp), pl)
	}

	fmt.Println("\nsprinting buys seconds; thermally-aware organization buys steady state.")
}
