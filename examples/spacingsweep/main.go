// Spacingsweep demonstrates the paper's core observation (Fig. 5): pulling
// chiplets apart on the interposer lowers the peak temperature of the same
// silicon running the same workload, reclaiming dark silicon.
//
// Run with:
//
//	go run ./examples/spacingsweep [-bench shock]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	chiplet "chiplet25d"
)

func main() {
	bench := flag.String("bench", "shock", "benchmark ("+strings.Join(chiplet.BenchmarkNames(), ", ")+")")
	grid := flag.Int("grid", 32, "thermal grid resolution")
	flag.Parse()

	opts := &chiplet.SimOptions{GridN: *grid}
	fmt.Printf("%s: all 256 cores at 1 GHz, 45 °C ambient, 85 °C threshold\n\n", *bench)

	single, err := chiplet.PeakTemperature(chiplet.SingleChip(), *bench, 1000, 256, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s %7.1f °C  %6.1f W   %s\n",
		"single chip (baseline)", single.PeakC, single.TotalPowerW, verdict(single.PeakC))

	for _, r := range []int{2, 4} {
		fmt.Println()
		for _, spacing := range []float64{0.5, 2, 4, 6, 8, 10} {
			pl, err := chiplet.UniformGrid(r, spacing)
			if err != nil {
				log.Fatal(err)
			}
			if pl.Validate() != nil {
				continue // interposer exceeds the 50 mm stepper limit
			}
			res, err := chiplet.PeakTemperature(pl, *bench, 1000, 256, opts)
			if err != nil {
				log.Fatal(err)
			}
			label := fmt.Sprintf("%d chiplets, %.1f mm spacing", r*r, spacing)
			fmt.Printf("%-28s %7.1f °C  %6.1f W   %s  (interposer %.0f mm, cost %.2fx)\n",
				label, res.PeakC, res.TotalPowerW, verdict(res.PeakC), pl.W, chiplet.NormalizedCost(pl))
		}
	}
	fmt.Println("\nwider spacing -> lower peak: the thermal headroom converts to more")
	fmt.Println("active cores or higher frequency under the same 85 °C constraint.")
}

func verdict(peakC float64) string {
	if peakC <= 85 {
		return "OK     "
	}
	return "TOO HOT"
}
