// Sensitivity reproduces the paper's temperature-threshold study in
// miniature: how much performance thermally-aware 2.5D organization
// reclaims at different safety thresholds (the paper reports 41%, 41%, 27%
// and 16% average gains at 75, 85, 95 and 105 °C — cooler limits leave more
// silicon dark, so there is more to win).
//
// Run with:
//
//	go run ./examples/sensitivity [-bench cholesky,canneal]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	chiplet "chiplet25d"
)

func main() {
	benchList := flag.String("bench", "cholesky,canneal", "comma-separated benchmarks")
	flag.Parse()
	benches := strings.Split(*benchList, ",")

	fmt.Printf("%-14s", "threshold")
	for _, b := range benches {
		fmt.Printf("  %-14s", b)
	}
	fmt.Println("  average")

	for _, th := range []float64{75, 85, 95, 105} {
		fmt.Printf("%-14s", fmt.Sprintf("%.0f °C", th))
		sum, n := 0.0, 0
		for _, b := range benches {
			res, err := chiplet.Optimize(strings.TrimSpace(b), func(c *chiplet.OptimizeConfig) {
				c.ThresholdC = th
				c.MaxNormCost = 1 // iso-cost, as the paper's headline
				c.Thermal.Nx, c.Thermal.Ny = 32, 32
				c.InterposerStepMM = 2
			})
			if err != nil {
				log.Fatal(err)
			}
			gain := 0.0
			if res.Feasible && res.Best.NormPerf > 1 {
				gain = (res.Best.NormPerf - 1) * 100
			}
			sum += gain
			n++
			fmt.Printf("  %-14s", fmt.Sprintf("+%.0f%%", gain))
		}
		fmt.Printf("  +%.1f%%\n", sum/float64(n))
	}
	fmt.Println("\nlower thresholds throttle the single chip harder, so the 2.5D")
	fmt.Println("organization reclaims more; at relaxed thresholds the chip can")
	fmt.Println("already run fast and the gap narrows.")
}
