// Multiapp demonstrates the paper's Sec. IV extension: selecting a single
// chiplet organization for a weighted mix of applications. Each application
// then runs at its own best feasible frequency and active-core count on the
// shared organization, and the weighted Eq. (5) objective trades their
// performance against manufacturing cost.
//
// Run with:
//
//	go run ./examples/multiapp
package main

import (
	"fmt"
	"log"

	chiplet "chiplet25d"
)

func main() {
	// A server mix: mostly the high-power solver, some low-power jobs.
	mix := map[string]float64{
		"cholesky": 0.5,
		"hpccg":    0.3,
		"canneal":  0.2,
	}

	res, err := chiplet.OptimizeMultiApp(mix, func(c *chiplet.OptimizeConfig) {
		c.Objective = chiplet.Objective{Alpha: 0.7, Beta: 0.3}
		// Coarse settings keep the example fast.
		c.Thermal.Nx, c.Thermal.Ny = 32, 32
		c.InterposerStepMM = 2
	})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Feasible {
		fmt.Println("no organization serves every application in the mix")
		return
	}

	fmt.Println("application mix: cholesky 50%, hpccg 30%, canneal 20%")
	fmt.Printf("chosen organization: %d chiplets on a %.1f mm interposer (s1=%.1f s2=%.1f s3=%.1f mm)\n",
		res.N, res.InterposerMM, res.S1, res.S2, res.S3)
	fmt.Printf("cost: $%.1f (%.2fx the single chip), weighted objective %.4f\n\n",
		res.CostUSD, res.NormCost, res.ObjValue)

	fmt.Printf("%-12s  %-9s %-6s  %-10s  %-9s  %s\n",
		"application", "f_MHz", "cores", "vs 2D", "peak_°C", "note")
	for _, a := range res.PerApp {
		note := "reclaimed dark silicon"
		if a.NormPerf < 1.01 {
			note = "already unconstrained on 2D"
		}
		fmt.Printf("%-12s  %-9.0f %-6d  %-10s  %-9.1f  %s\n",
			a.Name, a.Op.FreqMHz, a.ActiveCores,
			fmt.Sprintf("%.2fx", a.NormPerf), a.PeakC, note)
	}
	fmt.Printf("\nsearch used %d thermal simulations\n", res.ThermalSims)

	m, err := chiplet.PlacementMap(res.Placement, 256)
	if err == nil {
		fmt.Printf("\nshared organization (all cores shown active):\n%s\n", m)
	}
}
