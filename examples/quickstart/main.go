// Quickstart: optimize the chiplet organization for one benchmark and
// compare it against the single-chip baseline.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	chiplet "chiplet25d"
)

func main() {
	// The paper's flagship example: cholesky, a high-power SPLASH-2 kernel
	// that is thermally throttled to 533 MHz on the monolithic chip.
	// α=1, β=0 maximizes performance under the 85 °C threshold.
	res, err := chiplet.Optimize("cholesky", func(c *chiplet.OptimizeConfig) {
		// A coarser grid and step keep the quickstart fast; drop these two
		// lines for the paper's full resolution.
		c.Thermal.Nx, c.Thermal.Ny = 32, 32
		c.InterposerStepMM = 2
	})
	if err != nil {
		log.Fatal(err)
	}

	b := res.Baseline
	fmt.Println("=== single-chip baseline (18mm x 18mm, 256 cores) ===")
	fmt.Printf("best feasible: %4.0f MHz with %d active cores -> %.1f GIPS (peak %.1f °C)\n",
		b.Op.FreqMHz, b.ActiveCores, b.BestIPS, b.PeakC)
	if b.ActiveCores < 256 {
		fmt.Printf("the other %d cores are dark silicon\n\n", 256-b.ActiveCores)
	} else {
		fmt.Printf("all cores active, but throttled well below 1 GHz by the thermal limit\n\n")
	}

	if !res.Feasible {
		fmt.Println("no feasible 2.5D organization found")
		return
	}
	o := res.Best
	fmt.Println("=== thermally-aware 2.5D organization ===")
	fmt.Printf("%d chiplets on a %.1f mm interposer, spacings s1=%.1f s2=%.1f s3=%.1f mm\n",
		o.N, o.InterposerMM, o.S1, o.S2, o.S3)
	fmt.Printf("runs %4.0f MHz with %d active cores -> %.1f GIPS (peak %.1f °C)\n",
		o.Op.FreqMHz, o.ActiveCores, o.IPS, o.PeakC)
	fmt.Printf("performance: %.2fx the baseline (+%.0f%%)\n", o.NormPerf, (o.NormPerf-1)*100)
	fmt.Printf("cost:        %.2fx the baseline ($%.1f vs $%.1f)\n\n", o.NormCost, o.CostUSD, b.CostUSD)

	m, err := chiplet.PlacementMap(o.Placement, o.ActiveCores)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("placement (#=active core, .=dark core):\n%s\n", m)
	fmt.Printf("\nsearch cost: %d thermal simulations (%d decided by the surrogate)\n",
		res.ThermalSims, res.SurrogateHits)
}
