// Costperf traces the cost-performance frontier of 2.5D organizations for
// one benchmark (the Fig. 6 / Fig. 7 view): for each interposer size, the
// best achievable performance under 85 °C and the manufacturing cost, both
// normalized to the single-chip baseline, plus the Eq. (5) objective for a
// balanced (α, β).
//
// Run with:
//
//	go run ./examples/costperf [-bench hpccg]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	chiplet "chiplet25d"
	"chiplet25d/internal/org"
)

func main() {
	bench := flag.String("bench", "hpccg", "benchmark ("+strings.Join(chiplet.BenchmarkNames(), ", ")+")")
	flag.Parse()

	cfg, err := chiplet.NewOptimizeConfig(*bench)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Thermal.Nx, cfg.Thermal.Ny = 32, 32
	s, err := org.NewSearcher(cfg)
	if err != nil {
		log.Fatal(err)
	}
	base, err := s.Baseline()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s baseline: %.0f MHz, %d cores, %.1f GIPS, $%.1f\n\n",
		*bench, base.Op.FreqMHz, base.ActiveCores, base.BestIPS, base.CostUSD)
	fmt.Printf("%-8s  %-10s %-10s  %-12s  %s\n",
		"edge_mm", "norm_perf", "norm_cost", "obj(.5,.5)", "organization")

	balanced := chiplet.Objective{Alpha: 0.5, Beta: 0.5}
	bestObj, bestEdge := 1e18, 0.0
	for edge := 20.0; edge <= 50+1e-9; edge += 3 {
		o, found, err := s.MaxIPSAtEdge(edge)
		if err != nil {
			log.Fatal(err)
		}
		if !found {
			fmt.Printf("%-8.1f  %-10s\n", edge, "infeasible")
			continue
		}
		obj := balanced.Alpha/o.NormPerf + balanced.Beta*o.NormCost
		if obj < bestObj {
			bestObj, bestEdge = obj, edge
		}
		fmt.Printf("%-8.1f  %-10.3f %-10.3f  %-12.4f  n=%d f=%.0fMHz p=%d\n",
			edge, o.NormPerf, o.NormCost, obj, o.N, o.Op.FreqMHz, o.ActiveCores)
	}
	fmt.Printf("\nbalanced-objective sweet spot near %.0f mm (objective %.4f):\n", bestEdge, bestObj)
	fmt.Println("small interposers save money, large ones buy thermal headroom;")
	fmt.Println("Eq. (5) picks the tradeoff a designer weights with α and β.")
}
