// Package chiplet25d reproduces "Leveraging Thermally-Aware Chiplet
// Organization in 2.5D Systems to Reclaim Dark Silicon" (DATE 2018): a
// complete, self-contained implementation of the paper's 256-core 2.5D
// system model and its thermally-aware chiplet organization optimizer.
//
// The library is organized as substrates under internal/ (thermal solver,
// floorplanner, power and performance models, NoC model, cost model) with
// the optimizer in internal/org and every paper figure/table reproducible
// through internal/expt. This package is the public facade: it re-exports
// the types a user composes and provides one-call entry points for the
// common workflows:
//
//	res, err := chiplet25d.Optimize("cholesky", nil)         // Eq. (5) search
//	peak, err := chiplet25d.PeakTemperature(pl, "shock", 1000, 256, nil)
//	cost := chiplet25d.SystemCost(pl)
//
// See the examples/ directory for runnable programs and DESIGN.md for the
// system inventory and the per-experiment index.
package chiplet25d

import (
	"fmt"
	"io"

	"chiplet25d/internal/cost"
	"chiplet25d/internal/expt"
	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/noc"
	"chiplet25d/internal/org"
	"chiplet25d/internal/perf"
	"chiplet25d/internal/power"
	"chiplet25d/internal/thermal"
)

// Re-exported model types. These aliases are the stable public names for
// the library's composable pieces.
type (
	// Benchmark is one workload's performance/power model (Sniper/McPAT
	// substitute).
	Benchmark = perf.Benchmark
	// Placement is a concrete chiplet organization's plan-view geometry.
	Placement = floorplan.Placement
	// Organization is an optimized 2.5D configuration with its metrics.
	Organization = org.Organization
	// OptimizeResult is the outcome of an Eq. (5) optimization run.
	OptimizeResult = org.Result
	// OptimizeConfig parameterizes the optimizer.
	OptimizeConfig = org.Config
	// Objective holds the α/β weights of Eq. (5).
	Objective = org.Objective
	// DVFSPoint is a frequency/voltage operating point (Table II).
	DVFSPoint = power.DVFSPoint
	// CostParams are the Eq. (1)-(4) manufacturing cost constants.
	CostParams = cost.Params
	// ThermalConfig parameterizes the HotSpot-style grid solver.
	ThermalConfig = thermal.Config
)

// Benchmarks returns the paper's eight workloads.
func Benchmarks() []Benchmark { return perf.Benchmarks() }

// BenchmarkByName returns the named workload (e.g. "cholesky").
func BenchmarkByName(name string) (Benchmark, error) { return perf.ByName(name) }

// BenchmarkNames returns the available workload names.
func BenchmarkNames() []string { return perf.Names() }

// SingleChip returns the 2D baseline: the monolithic 18mm x 18mm 256-core
// chip.
func SingleChip() Placement { return floorplan.SingleChip() }

// UniformGrid places r x r chiplets with uniform spacing (mm).
func UniformGrid(r int, spacingMM float64) (Placement, error) {
	return floorplan.UniformGrid(r, spacingMM)
}

// PaperOrg builds the paper's Fig. 4(a) organization for n in {4, 16} with
// spacings s1, s2, s3 (mm).
func PaperOrg(n int, s1, s2, s3 float64) (Placement, error) {
	return floorplan.PaperOrg(n, s1, s2, s3)
}

// NewOptimizeConfig returns the paper's default optimization setup for a
// named benchmark (85 °C threshold, α=1 β=0, chiplet counts {4, 16},
// interposers 20-50 mm, 10 greedy starts).
func NewOptimizeConfig(benchmark string) (OptimizeConfig, error) {
	b, err := perf.ByName(benchmark)
	if err != nil {
		return OptimizeConfig{}, err
	}
	return org.DefaultConfig(b), nil
}

// Optimize runs the thermally-aware chiplet organization search for a
// benchmark. The optional mutate callback adjusts the default configuration
// (threshold, objective weights, grid, ...) before the run.
func Optimize(benchmark string, mutate func(*OptimizeConfig)) (OptimizeResult, error) {
	cfg, err := NewOptimizeConfig(benchmark)
	if err != nil {
		return OptimizeResult{}, err
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := org.NewSearcher(cfg)
	if err != nil {
		return OptimizeResult{}, err
	}
	return s.Optimize()
}

// AppMix is one application and its usage weight for multi-application
// organization selection (the paper's Sec. IV weighted-average extension).
type AppMix = org.AppMix

// MultiAppResult is the outcome of a multi-application organization search.
type MultiAppResult = org.MultiAppResult

// OptimizeMultiApp selects one chiplet organization for a weighted mix of
// applications: each application runs at its own best feasible (f, p) on
// the shared organization, and the weighted Eq. (5) objective scores the
// whole mix. Weights are usage frequencies (u_i in the paper); mutate
// adjusts the defaults as in Optimize.
func OptimizeMultiApp(mix map[string]float64, mutate func(*OptimizeConfig)) (MultiAppResult, error) {
	if len(mix) == 0 {
		return MultiAppResult{}, fmt.Errorf("chiplet25d: empty application mix")
	}
	var apps []AppMix
	for _, name := range BenchmarkNames() { // deterministic order
		w, ok := mix[name]
		if !ok {
			continue
		}
		b, err := perf.ByName(name)
		if err != nil {
			return MultiAppResult{}, err
		}
		apps = append(apps, AppMix{Benchmark: b, Weight: w})
	}
	if len(apps) != len(mix) {
		return MultiAppResult{}, fmt.Errorf("chiplet25d: mix contains unknown benchmarks (have %v)", BenchmarkNames())
	}
	cfg := org.DefaultConfig(apps[0].Benchmark)
	if mutate != nil {
		mutate(&cfg)
	}
	return org.OptimizeMultiApp(cfg, apps)
}

// SimOptions tunes one-shot simulations.
type SimOptions struct {
	// GridN sets the thermal grid (default 64, the paper's resolution).
	GridN int
	// ThresholdC is only used for reporting; simulations always run to
	// convergence.
	ThresholdC float64
	// Preconditioner selects the thermal CG preconditioner, "ic0" or "mg"
	// (empty: thermal's default, IC(0)). The two agree to the solver
	// tolerance; "mg" converges in far fewer iterations on large grids.
	Preconditioner string
}

// SimResult is a one-shot simulation outcome.
type SimResult struct {
	// PeakC is the converged peak chip temperature.
	PeakC float64
	// TotalPowerW includes temperature-adjusted leakage and NoC power.
	TotalPowerW float64
	// MeshPowerW is the NoC share.
	MeshPowerW float64

	field *thermal.Result
}

// HeatmapASCII renders the converged chip-layer temperature field as ASCII
// art (one character per thermal grid cell, hottest = '@').
func (s SimResult) HeatmapASCII() string {
	if s.field == nil {
		return ""
	}
	return s.field.HeatmapASCII()
}

// WriteHeatmapPGM writes the converged field as an 8-bit PGM image,
// auto-scaled to the field's temperature range.
func (s SimResult) WriteHeatmapPGM(w io.Writer) error {
	if s.field == nil {
		return fmt.Errorf("chiplet25d: no thermal field available")
	}
	return s.field.WriteHeatmapPGM(w, 0, 0)
}

// WriteFieldCSV writes the converged chip-layer field as
// x_mm,y_mm,temp_C rows.
func (s SimResult) WriteFieldCSV(w io.Writer) error {
	if s.field == nil {
		return fmt.Errorf("chiplet25d: no thermal field available")
	}
	return s.field.WriteFieldCSV(w)
}

// PeakTemperature runs the full leakage-coupled thermal simulation of a
// benchmark on a placement: p active cores (MinTemp allocation) at the
// DVFS point matching freqMHz. Pass nil options for the paper defaults.
func PeakTemperature(pl Placement, benchmark string, freqMHz float64, p int, opts *SimOptions) (SimResult, error) {
	b, err := perf.ByName(benchmark)
	if err != nil {
		return SimResult{}, err
	}
	op, err := OperatingPoint(freqMHz)
	if err != nil {
		return SimResult{}, err
	}
	tc := thermal.DefaultConfig()
	if opts != nil && opts.GridN > 0 {
		tc.Nx, tc.Ny = opts.GridN, opts.GridN
	}
	if opts != nil && opts.Preconditioner != "" {
		tc.Preconditioner = opts.Preconditioner
	}
	stack, err := floorplan.BuildStack(pl)
	if err != nil {
		return SimResult{}, err
	}
	model, err := thermal.NewModel(stack, tc)
	if err != nil {
		return SimResult{}, err
	}
	cores, err := pl.Cores()
	if err != nil {
		return SimResult{}, err
	}
	active, err := power.MintempActive(p)
	if err != nil {
		return SimResult{}, err
	}
	mesh, err := noc.MeshPower(pl, op, p, b.Traffic, noc.DefaultLinkParams(), noc.DefaultRouterParams())
	if err != nil {
		return SimResult{}, err
	}
	w := power.Workload{
		RefCoreW: b.RefCoreW, Op: op, Active: active,
		NoCW: mesh.TotalW(), Leakage: power.DefaultLeakage(),
	}
	res, err := power.Simulate(model, cores, w, power.DefaultSimOptions())
	if err != nil {
		return SimResult{}, err
	}
	return SimResult{
		PeakC:       res.PeakC,
		TotalPowerW: res.TotalPowerW,
		MeshPowerW:  mesh.TotalW(),
		field:       res.Thermal,
	}, nil
}

// ParetoFront computes the cost-performance frontier of 2.5D organizations
// for a benchmark under the configured threshold: the non-dominated set of
// organizations sorted by ascending cost (see Organization.NormPerf and
// NormCost for baseline-relative values).
func ParetoFront(benchmark string, mutate func(*OptimizeConfig)) ([]Organization, error) {
	cfg, err := NewOptimizeConfig(benchmark)
	if err != nil {
		return nil, err
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := org.NewSearcher(cfg)
	if err != nil {
		return nil, err
	}
	return s.ParetoFront()
}

// SprintResult describes a computational-sprinting run: how long the
// organization sustained full-throttle operation from the idle state before
// reaching the threshold.
type SprintResult struct {
	// SprintSeconds is the time to the threshold (or MaxSeconds).
	SprintSeconds float64
	// Sustained reports the burst never reached the threshold: the
	// organization can run it at steady state.
	Sustained bool
}

// SprintTime integrates the transient thermal response of a placement
// running a benchmark with all 256 cores at 1 GHz from the idle state, and
// returns the time until the peak reaches thresholdC (bounded by
// maxSeconds). Temperature-dependent leakage is updated each step.
func SprintTime(pl Placement, benchmark string, thresholdC, maxSeconds float64, opts *SimOptions) (SprintResult, error) {
	b, err := perf.ByName(benchmark)
	if err != nil {
		return SprintResult{}, err
	}
	tc := thermal.DefaultConfig()
	if opts != nil && opts.GridN > 0 {
		tc.Nx, tc.Ny = opts.GridN, opts.GridN
	}
	if opts != nil && opts.Preconditioner != "" {
		tc.Preconditioner = opts.Preconditioner
	}
	stack, err := floorplan.BuildStack(pl)
	if err != nil {
		return SprintResult{}, err
	}
	model, err := thermal.NewModel(stack, tc)
	if err != nil {
		return SprintResult{}, err
	}
	cores, err := pl.Cores()
	if err != nil {
		return SprintResult{}, err
	}
	mesh, err := noc.MeshPower(pl, power.NominalPoint, floorplan.NumCores, b.Traffic,
		noc.DefaultLinkParams(), noc.DefaultRouterParams())
	if err != nil {
		return SprintResult{}, err
	}
	nocPerCore := mesh.TotalW() / floorplan.NumCores
	lm := power.DefaultLeakage()
	ts, err := model.NewTransientSolver(0.25)
	if err != nil {
		return SprintResult{}, err
	}
	grid := model.Grid()
	for ts.Elapsed < maxSeconds {
		pmap := make([]float64, grid.NumCells())
		chip := ts.ChipT()
		for _, c := range cores {
			cx, cy := c.Rect.Center()
			ix, iy := grid.CellAt(cx, cy)
			tC := chip[grid.Index(ix, iy)]
			grid.RasterizeAdd(pmap, c.Rect,
				power.CorePower(b.RefCoreW, power.NominalPoint, tC, lm)+nocPerCore)
		}
		peak, err := ts.Step(pmap)
		if err != nil {
			return SprintResult{}, err
		}
		if peak >= thresholdC {
			return SprintResult{SprintSeconds: ts.Elapsed}, nil
		}
	}
	return SprintResult{SprintSeconds: maxSeconds, Sustained: true}, nil
}

// OperatingPoint returns the Table II DVFS point for a frequency in MHz.
func OperatingPoint(freqMHz float64) (DVFSPoint, error) {
	for _, op := range power.FrequencySet {
		if op.FreqMHz == freqMHz {
			return op, nil
		}
	}
	return DVFSPoint{}, fmt.Errorf("chiplet25d: frequency %g MHz not in the DVFS table %v",
		freqMHz, power.FrequencySet)
}

// FrequenciesMHz lists the Table II frequencies.
func FrequenciesMHz() []float64 {
	out := make([]float64, len(power.FrequencySet))
	for i, op := range power.FrequencySet {
		out[i] = op.FreqMHz
	}
	return out
}

// ActiveCoreCounts lists the paper's active core count set.
func ActiveCoreCounts() []int {
	return append([]int(nil), power.ActiveCoreCounts...)
}

// SystemCost returns the manufacturing cost (USD) of a placement under the
// Table II cost constants.
func SystemCost(pl Placement) float64 {
	return cost.DefaultParams().PlacementCost(pl)
}

// NormalizedCost returns a placement's cost relative to the 2D baseline.
func NormalizedCost(pl Placement) float64 {
	p := cost.DefaultParams()
	return p.PlacementCost(pl) / p.PlacementCost(floorplan.SingleChip())
}

// PlacementMap renders a placement and its MinTemp allocation of p active
// cores as ASCII art.
func PlacementMap(pl Placement, p int) (string, error) { return expt.PlacementMap(pl, p) }

// RunExperiment regenerates a paper artifact by name (see ExperimentNames)
// and writes its table to w. Scale "full" uses the paper's
// parameterization; anything else runs the reduced version.
func RunExperiment(name string, scale string, w io.Writer) error {
	e, err := expt.ByName(name)
	if err != nil {
		return err
	}
	opts := expt.DefaultOptions()
	if scale == "full" {
		opts.Scale = expt.Full
	}
	tb, err := e.Run(opts)
	if err != nil {
		return err
	}
	return tb.WriteText(w)
}

// ExperimentNames lists the reproducible paper artifacts.
func ExperimentNames() []string {
	var names []string
	for _, e := range expt.Registry() {
		names = append(names, e.Name)
	}
	return names
}
