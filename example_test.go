package chiplet25d_test

import (
	"fmt"

	chiplet "chiplet25d"
)

// ExampleSystemCost shows the Eq. (1)-(4) cost model: disintegrating the
// 18mm x 18mm chip into 16 chiplets on a minimal interposer saves ~36%.
func ExampleSystemCost() {
	chip := chiplet.SingleChip()
	pl, err := chiplet.PaperOrg(4, 0, 0, 0) // minimal 4-chiplet organization
	if err != nil {
		panic(err)
	}
	fmt.Printf("single chip: $%.1f\n", chiplet.SystemCost(chip))
	fmt.Printf("4 chiplets:  $%.1f (%.0f%% cheaper)\n",
		chiplet.SystemCost(pl), (1-chiplet.NormalizedCost(pl))*100)
	// Output:
	// single chip: $56.5
	// 4 chiplets:  $36.3 (36% cheaper)
}

// ExampleOperatingPoint retrieves a Table II DVFS point.
func ExampleOperatingPoint() {
	op, err := chiplet.OperatingPoint(533)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.0f MHz at %.2f V\n", op.FreqMHz, op.VoltageV)
	// Output:
	// 533 MHz at 0.71 V
}

// ExampleBenchmarkByName inspects a workload model: canneal's performance
// saturates at 192 active cores (the paper's observation).
func ExampleBenchmarkByName() {
	b, err := chiplet.BenchmarkByName("canneal")
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s (%s) saturates at %d cores\n", b.Name, b.Suite, b.SaturationCores())
	// Output:
	// canneal (PARSEC) saturates at 192 cores
}

// ExamplePaperOrg builds the paper's Fig. 4(a) 16-chiplet organization and
// validates Eq. (9): interposer edge = 4·w_c + 2·s1 + s3 + 2·l_g.
func ExamplePaperOrg() {
	pl, err := chiplet.PaperOrg(16, 1.0, 0.5, 2.0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d chiplets on a %.1f mm interposer\n", pl.NumChiplets(), pl.W)
	// Output:
	// 16 chiplets on a 24.0 mm interposer
}
